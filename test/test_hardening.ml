(* Adversarial-input hardening tests (DESIGN.md §13): execution sandbox
   quotas, the post-instrumentation MIR verifier, golden-run integrity and
   the quarantine plumbing through supervisor, journal, CSV and reports. *)

module E = Refine_machine.Exec
module M = Refine_mir.Minstr
module R = Refine_mir.Reg
module MF = Refine_mir.Mfunc
module MV = Refine_mir.Mverify
module T = Refine_core.Tool
module F = Refine_core.Fault
module Sel = Refine_passes.Selection
module S = Refine_support.Supervisor
module Ex = Refine_campaign.Experiment
module J = Refine_campaign.Journal
module Csv = Refine_campaign.Csv
module Rep = Refine_campaign.Report

let tmpfile () = Filename.temp_file "refine_hardening" ".log"
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* an adversarial program: unbounded-looking output amplification *)
let chatty_src =
  {|
int main() {
  int i;
  for (i = 0; i < 4096; i = i + 1) { print_int(i); }
  return 0;
}
|}

(* allocates ~8 KiB per iteration through the runtime bump allocator *)
let hungry_src =
  {|
int main() {
  int i;
  float[] p;
  p = alloc_float(8);
  for (i = 0; i < 4096; i = i + 1) { p = alloc_float(1024); }
  print_float(p[0]);
  return 0;
}
|}

(* makes no architectural progress: the state fingerprint repeats *)
let spinner_src =
  {|
int main() {
  int i;
  i = 0;
  while (i == 0) { i = i * 1; }
  return 0;
}
|}

(* the FI-instrumentable workload shared by the tool/campaign tests *)
let fi_src =
  {|
global float acc;
float work(float[] a, int m) {
  float s = 0.0;
  int i;
  for (i = 0; i < m; i = i + 1) { s = s + a[i] * a[i] + 0.5; }
  return s;
}
int main() {
  int i;
  float[] h = alloc_float(32);
  for (i = 0; i < 32; i = i + 1) { h[i] = tofloat(i % 7) * 0.25; }
  acc = work(h, 32);
  print_float(acc);
  print_int(toint(acc));
  return 0;
}
|}

let engine_of ?(opt = Refine_passes.Pipeline.O2) source =
  let m = Refine_minic.Frontend.compile source in
  Refine_passes.Pipeline.optimize opt m;
  E.create (Refine_passes.Pipeline.compile m)

let build_mir ?(opt = Refine_passes.Pipeline.O2) source =
  let m = Refine_minic.Frontend.compile source in
  Refine_passes.Pipeline.optimize opt m;
  Refine_passes.Pipeline.to_mir m

let break_mir = { T.break_mir = true; flaky_golden = false }
let flaky_golden = { T.break_mir = false; flaky_golden = true }

(* ---- execution sandbox quotas ---- *)

let test_output_quota () =
  let r = E.run ~output_quota:64 (engine_of chatty_src) in
  (match r.E.status with
  | E.Trapped (E.Output_quota _) -> ()
  | _ -> Alcotest.fail "expected Output_quota trap");
  Alcotest.(check bool) "flagged truncated" true r.E.truncated;
  Alcotest.(check bool) "output cut at the quota" true (String.length r.E.output <= 64)

let test_output_quota_not_hit () =
  (* a generous quota never perturbs a clean run *)
  let free = E.run (engine_of chatty_src) in
  let capped = E.run ~output_quota:(String.length free.E.output + 1) (engine_of chatty_src) in
  Alcotest.(check bool) "clean exit" true (capped.E.status = free.E.status);
  Alcotest.(check bool) "not truncated" false capped.E.truncated;
  Alcotest.(check string) "identical output" free.E.output capped.E.output

let test_heap_quota () =
  let r = E.run ~heap_quota:65536 (engine_of hungry_src) in
  match r.E.status with
  | E.Trapped (E.Heap_quota _) -> ()
  | s -> Alcotest.fail ("expected Heap_quota trap, got " ^
                        (match s with E.Trapped t -> E.string_of_trap t | _ -> "no trap"))

let test_wall_clock () =
  (* injectable clock: each poll advances 0.25 "seconds" *)
  let t = ref 0.0 in
  let clock () =
    t := !t +. 0.25;
    !t
  in
  let r = E.run ~wall_clock:1.0 ~clock ~max_steps:50_000_000L (engine_of spinner_src) in
  match r.E.status with
  | E.Trapped (E.Wall_clock _) -> ()
  | _ -> Alcotest.fail "expected Wall_clock trap"

let test_livelock () =
  let r = E.run ~livelock:1024 ~max_steps:50_000_000L (engine_of spinner_src) in
  (match r.E.status with
  | E.Trapped E.Livelock -> ()
  | _ -> Alcotest.fail "expected Livelock trap");
  Alcotest.(check bool) "caught well before the step budget" true (r.E.steps < 10_000_000L)

let test_livelock_spares_progress () =
  (* a program that makes progress to termination is never a livelock *)
  let r = E.run ~livelock:1024 (engine_of chatty_src) in
  match r.E.status with
  | E.Exited 0 -> ()
  | _ -> Alcotest.fail "progressing program misclassified as livelock"

(* ---- classification of sandboxed outcomes ---- *)

let prof golden =
  { F.golden_output = golden; golden_exit = 0; dyn_count = 8L; profile_cost = 100L }

let res ?(truncated = false) status output =
  { E.status; output; steps = 10L; cost = 10L; truncated; detached = false; drain_steps = 0 }

let test_truncated_is_crash () =
  (* a truncated prefix of the golden output must never read as Benign *)
  let p = prof "abcdef" in
  Alcotest.(check bool) "truncated prefix -> Crash" true
    (F.classify p (res ~truncated:true (E.Exited 0) "abc") = F.Crash);
  Alcotest.(check bool) "untruncated match -> Benign" true
    (F.classify p (res (E.Exited 0) "abcdef") = F.Benign)

let all_traps =
  [
    E.Mem_fault 0;
    E.Div_by_zero;
    E.Bad_pc 0;
    E.Stack_overflow;
    E.Out_of_memory;
    E.Extern_fault "x";
    E.Output_quota 64;
    E.Heap_quota 65536;
    E.Wall_clock 1.0;
    E.Livelock;
  ]

let test_quota_traps_classify_crash () =
  let p = prof "abcdef" in
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (E.string_of_trap t ^ " -> Crash")
        true
        (F.classify p (res (E.Trapped t) "abcdef") = F.Crash))
    all_traps

let test_trap_names_distinct () =
  let names = List.map E.string_of_trap all_traps in
  Alcotest.(check int) "trap names distinct" (List.length names)
    (List.length (List.sort_uniq compare names))

(* ---- post-instrumentation MIR verifier ---- *)

let test_verifier_accepts_instrumented () =
  let funcs = build_mir fi_src in
  let frames = List.map (fun (mf : MF.t) -> (mf, mf.MF.frame_bytes)) funcs in
  let sites =
    List.fold_left (fun acc (mf, _) -> acc + Refine_passes.Refine_pass.run mf) 0 frames
  in
  Alcotest.(check bool) "sites instrumented" true (sites > 0);
  let verified =
    List.fold_left
      (fun acc (mf, fb) -> acc + MV.check_instrumented ~expect_frame_bytes:fb mf)
      0 frames
  in
  Alcotest.(check int) "verifier counts every splice" sites verified

let test_verifier_rejects_clique_clobber () =
  let funcs = build_mir fi_src in
  List.iter (fun mf -> ignore (Refine_passes.Refine_pass.run mf)) funcs;
  (* plant a write to a register outside the FI clique in one SetupFI block *)
  let planted = ref false in
  List.iter
    (fun (mf : MF.t) ->
      List.iter
        (fun (b : MF.mblock) ->
          if
            (not !planted)
            && List.exists (function M.Mcallext "fi_setup_fi" -> true | _ -> false) b.MF.code
          then begin
            planted := true;
            b.MF.code <- M.Mmov (R.gpr 6, M.Imm 0xBADL) :: b.MF.code
          end)
        mf.MF.blocks)
    funcs;
  Alcotest.(check bool) "clobber planted" true !planted;
  Alcotest.(check bool) "verifier rejects the clobber" true
    (try
       List.iter (fun mf -> ignore (MV.check_instrumented mf)) funcs;
       false
     with MV.Invalid _ -> true)

let test_verifier_rejects_frame_change () =
  let funcs = build_mir fi_src in
  match funcs with
  | [] -> Alcotest.fail "no functions"
  | mf :: _ ->
    ignore (Refine_passes.Refine_pass.run mf);
    Alcotest.(check bool) "frame growth rejected" true
      (try
         ignore (MV.check_instrumented ~expect_frame_bytes:(mf.MF.frame_bytes + 8) mf);
         false
       with MV.Invalid _ -> true)

(* ---- tool-level quarantine: chaos-injected hardening failures ---- *)

let test_chaos_break_mir_quarantines () =
  match T.prepare ~chaos:break_mir T.Refine fi_src with
  | exception T.Quarantine (category, _) ->
    Alcotest.(check string) "category" "mir-verifier" category
  | _ -> Alcotest.fail "expected Quarantine"

let test_chaos_flaky_golden_quarantines () =
  match T.prepare ~chaos:flaky_golden T.Refine fi_src with
  | exception T.Quarantine (category, _) ->
    Alcotest.(check string) "category" "nondeterministic-golden" category
  | _ -> Alcotest.fail "expected Quarantine"

let test_prepare_clean_under_verifier () =
  (* the default path — verifier on, double golden run — accepts a clean
     program under every tool *)
  List.iter
    (fun kind ->
      let p = T.prepare kind fi_src in
      Alcotest.(check bool) (T.kind_name kind ^ " population") true (p.T.profile.F.dyn_count > 0L))
    [ T.Refine; T.Llfi; T.Pinfi ]

let test_derived_output_quota () =
  let p = prof "abcdef" in
  Alcotest.(check int) "4 KiB floor" 4096 (T.derived_output_quota p);
  let big = prof (String.make 1024 'x') in
  Alcotest.(check int) "16x golden" (16 * 1024) (T.derived_output_quota big)

(* ---- campaign-level quarantine plumbing ---- *)

let quarantined_cell () =
  Ex.run_cell ~samples:4 ~seed:7 ~chaos:break_mir T.Refine ~program:"adv" ~source:fi_src ()

let test_run_cell_quarantined () =
  let cell = quarantined_cell () in
  (match cell.Ex.quarantined with
  | Some r -> Alcotest.(check bool) "categorized reason" true (contains r "mir-verifier")
  | None -> Alcotest.fail "cell not quarantined");
  Alcotest.(check int) "zero samples ran" 0 (Ex.attempted cell.Ex.counts)

let test_journal_quarantine_resume () =
  let path = tmpfile () in
  let j = J.create path in
  let cell =
    Ex.run_cell ~journal:j ~samples:3 ~seed:1 ~chaos:break_mir T.Refine ~program:"adv"
      ~source:fi_src ()
  in
  Alcotest.(check bool) "first run quarantined" true (cell.Ex.quarantined <> None);
  (* a resuming campaign sees the journaled quarantine and short-circuits:
     no chaos this time, yet the cell must stay quarantined without being
     re-prepared *)
  let j2 = J.create ~resume:true path in
  (match J.quarantine_reason j2 ~program:"adv" ~tool:"REFINE" with
  | Some r -> Alcotest.(check bool) "journaled reason kept" true (contains r "mir-verifier")
  | None -> Alcotest.fail "quarantine not journaled");
  let cell2 =
    Ex.run_cell ~journal:j2 ~samples:3 ~seed:1 T.Refine ~program:"adv" ~source:fi_src ()
  in
  Alcotest.(check bool) "resume short-circuits to quarantined" true (cell2.Ex.quarantined <> None);
  Alcotest.(check int) "still zero samples" 0 (Ex.attempted cell2.Ex.counts);
  Sys.remove path

let test_journal_skips_bad_lines () =
  (* satellite: an unknown outcome name (written by a newer version) or a
     malformed row is skipped and counted, never fatal *)
  let path = tmpfile () in
  let oc = open_out path in
  Printf.fprintf oc "p\tREFINE\t0\t%s\t5\t1\n" (F.string_of_outcome F.Benign);
  output_string oc "p\tREFINE\t1\ttranscendent\t5\t1\n";
  output_string oc "garbage that is not a journal line\n";
  close_out oc;
  let j = J.create ~resume:true path in
  Alcotest.(check int) "one entry survives" 1 (J.length j);
  Alcotest.(check int) "two lines skipped" 2 (J.skipped j);
  Sys.remove path

(* a tiny three-tool campaign with REFINE quarantined, shared across the
   report tests *)
let adv_cells =
  lazy
    (let q = quarantined_cell () in
     let l = Ex.run_cell ~samples:4 ~seed:7 T.Llfi ~program:"adv" ~source:fi_src () in
     let p = Ex.run_cell ~samples:4 ~seed:7 T.Pinfi ~program:"adv" ~source:fi_src () in
     [ q; l; p ])

let test_csv_roundtrip_quarantine () =
  let cells = Lazy.force adv_cells in
  let cells' = Csv.of_string (Csv.to_string cells) in
  Alcotest.(check int) "cells preserved" (List.length cells) (List.length cells');
  List.iter2
    (fun (c : Ex.cell) (c' : Ex.cell) ->
      Alcotest.(check string) "program" c.Ex.program c'.Ex.program;
      Alcotest.(check int) "samples n" (Ex.total c.Ex.counts) (Ex.total c'.Ex.counts);
      Alcotest.(check bool) "quarantine flag" (c.Ex.quarantined <> None) (c'.Ex.quarantined <> None);
      match c'.Ex.quarantined with
      | Some r -> Alcotest.(check bool) "reason survives" true (contains r "mir-verifier")
      | None -> ())
    cells cells'

let test_reports_exclude_quarantined () =
  let cells = Lazy.force adv_cells in
  let rows = Rep.chi2_rows cells [ "adv" ] in
  (match rows with
  | [ row ] ->
    Alcotest.(check bool) "quarantined tool listed" true
      (List.mem_assoc "REFINE" row.Rep.quarantined_tools)
  | _ -> Alcotest.fail "expected one chi2 row");
  Alcotest.(check bool) "table5 marks [q]" true (contains (Rep.table5 rows) "[q]");
  Alcotest.(check bool) "quarantine report lists the cell" true
    (contains (Rep.quarantine_report cells) "adv");
  Alcotest.(check bool) "degradation flags the quarantine" true
    (String.concat "\n" (Rep.degradation cells) |> fun s -> contains s "QUARANTINED");
  Alcotest.(check bool) "journal skips surface in degradation" true
    (String.concat "\n" (Rep.degradation ~journal_skipped:3 cells) |> fun s ->
     contains s "journal")

let test_quota_campaign_completes () =
  (* adversarial quotas applied to a healthy cell leave its statistics
     bit-identical: quotas only bound resources, they never perturb the
     outcome of runs that stay within them *)
  let base = Ex.run_cell ~samples:8 ~seed:5 T.Refine ~program:"adv" ~source:fi_src () in
  let sandboxed =
    Ex.run_cell
      ~quotas:{ T.default_quotas with T.livelock_window = Some 65536 }
      ~samples:8 ~seed:5 T.Refine ~program:"adv" ~source:fi_src ()
  in
  Alcotest.(check bool) "not quarantined" true (sandboxed.Ex.quarantined = None);
  Alcotest.(check int) "crash count unchanged" base.Ex.counts.Ex.crash sandboxed.Ex.counts.Ex.crash;
  Alcotest.(check int) "soc count unchanged" base.Ex.counts.Ex.soc sandboxed.Ex.counts.Ex.soc;
  Alcotest.(check int) "benign count unchanged" base.Ex.counts.Ex.benign sandboxed.Ex.counts.Ex.benign

(* ---- supervisor: quarantine/quota failures burn no retries ---- *)

let test_non_retryable_single_attempt () =
  let policy = { S.default_policy with S.max_retries = 3 } in
  let out =
    S.run ~policy ~domains:1 1 (fun ~attempt:_ _ -> raise (S.Non_retryable (Failure "bad input")))
  in
  match out.(0) with
  | S.Failed f ->
    Alcotest.(check int) "exactly one attempt" 1 f.S.attempts;
    Alcotest.(check bool) "payload unwrapped" true
      (match f.S.exn with Failure m -> String.equal m "bad input" | _ -> false)
  | _ -> Alcotest.fail "expected Failed"

let test_retryable_still_retries () =
  let policy = { S.default_policy with S.max_retries = 3 } in
  let out =
    S.run ~policy ~domains:1 1 (fun ~attempt i ->
        if attempt < 2 then failwith "flaky" else i)
  in
  match out.(0) with
  | S.Done (0, attempts) -> Alcotest.(check int) "third attempt wins" 3 attempts
  | _ -> Alcotest.fail "expected Done"

(* ---- properties ---- *)

let qcheck t = QCheck_alcotest.to_alcotest t

let sel_class = QCheck.oneofl [ Sel.All; Sel.Stack; Sel.Arith; Sel.Mem ]
let opt_level = QCheck.oneofl Refine_passes.Pipeline.[ O0; O1; O2 ]

let prop_instrumented_always_valid =
  QCheck.Test.make ~name:"any selection/opt instruments to verifier-valid MIR" ~count:12
    QCheck.(triple sel_class bool opt_level)
    (fun (cls, save_flags, opt) ->
      let funcs = build_mir ~opt fi_src in
      let frames = List.map (fun (mf : MF.t) -> (mf, mf.MF.frame_bytes)) funcs in
      let sel = Sel.{ funcs = [ "*" ]; instrs = cls } in
      let sites =
        List.fold_left
          (fun acc (mf, _) -> acc + Refine_passes.Refine_pass.run ~sel ~save_flags mf)
          0 frames
      in
      let verified =
        List.fold_left
          (fun acc (mf, fb) -> acc + MV.check_instrumented ~expect_frame_bytes:fb mf)
          0 frames
      in
      sites = verified)

let outcome_gen = QCheck.oneofl [ F.Crash; F.Soc; F.Benign; F.Tool_error ]

let prop_journal_roundtrip =
  QCheck.Test.make ~name:"journal entries roundtrip bit-identically" ~count:20
    QCheck.(quad outcome_gen small_nat (map Int64.of_int small_nat) small_nat)
    (fun (outcome, sample, cost, attempts) ->
      let path = tmpfile () in
      let e = { J.program = "p"; tool = "REFINE"; model = "reg"; sample; outcome; cost; attempts } in
      let j = J.create path in
      J.record j e;
      let j' = J.create ~resume:true path in
      let ok = J.entries j' = [ e ] && J.skipped j' = 0 in
      Sys.remove path;
      ok)

let prop_trapped_always_crash =
  QCheck.Test.make ~name:"every trap kind classifies as Crash" ~count:40
    QCheck.(pair (oneofl all_traps) bool)
    (fun (trap, truncated) ->
      F.classify (prof "golden") (res ~truncated (E.Trapped trap) "golden") = F.Crash)

let tests =
  [
    Alcotest.test_case "exec: output quota trips and truncates" `Quick test_output_quota;
    Alcotest.test_case "exec: generous output quota is transparent" `Quick test_output_quota_not_hit;
    Alcotest.test_case "exec: heap quota trips the allocator" `Quick test_heap_quota;
    Alcotest.test_case "exec: wall-clock deadline with injected clock" `Quick test_wall_clock;
    Alcotest.test_case "exec: livelock fingerprint detection" `Quick test_livelock;
    Alcotest.test_case "exec: progressing run is not a livelock" `Quick test_livelock_spares_progress;
    Alcotest.test_case "classify: truncated output is Crash" `Quick test_truncated_is_crash;
    Alcotest.test_case "classify: quota traps are Crash" `Quick test_quota_traps_classify_crash;
    Alcotest.test_case "trap names are distinct" `Quick test_trap_names_distinct;
    Alcotest.test_case "mverify: accepts REFINE-instrumented MIR" `Quick test_verifier_accepts_instrumented;
    Alcotest.test_case "mverify: rejects clique clobber" `Quick test_verifier_rejects_clique_clobber;
    Alcotest.test_case "mverify: rejects frame-size change" `Quick test_verifier_rejects_frame_change;
    Alcotest.test_case "tool: break_mir chaos quarantines" `Quick test_chaos_break_mir_quarantines;
    Alcotest.test_case "tool: flaky golden run quarantines" `Quick test_chaos_flaky_golden_quarantines;
    Alcotest.test_case "tool: clean prepare passes hardening" `Quick test_prepare_clean_under_verifier;
    Alcotest.test_case "tool: derived output quota" `Quick test_derived_output_quota;
    Alcotest.test_case "campaign: quarantined cell runs no samples" `Quick test_run_cell_quarantined;
    Alcotest.test_case "campaign: journal quarantine short-circuits resume" `Quick test_journal_quarantine_resume;
    Alcotest.test_case "campaign: journal skips undecodable lines" `Quick test_journal_skips_bad_lines;
    Alcotest.test_case "campaign: CSV roundtrips quarantine column" `Quick test_csv_roundtrip_quarantine;
    Alcotest.test_case "report: quarantined cells excluded and flagged" `Quick test_reports_exclude_quarantined;
    Alcotest.test_case "campaign: quotas transparent on healthy cell" `Quick test_quota_campaign_completes;
    Alcotest.test_case "supervisor: Non_retryable burns one attempt" `Quick test_non_retryable_single_attempt;
    Alcotest.test_case "supervisor: retryable failures still retry" `Quick test_retryable_still_retries;
    qcheck prop_instrumented_always_valid;
    qcheck prop_journal_roundtrip;
    qcheck prop_trapped_always_crash;
  ]
