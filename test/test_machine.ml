(* Machine simulator tests: ISA semantics, flags/condition codes, memory
   and stack traps, extern dispatch, cost accounting and hooks. *)

module M = Refine_mir.Minstr
module R = Refine_mir.Reg
module MF = Refine_mir.Mfunc
module E = Refine_machine.Exec
module L = Refine_backend.Layout

(* Build a one-function image directly from machine instructions.  Each
   instruction gets its own block labeled with its index, so jump targets in
   the tests below read as absolute instruction addresses. *)
let image_of ?(globals = []) instrs =
  let mf = MF.create "main" in
  List.iteri
    (fun k i ->
      let b = MF.add_block mf k in
      b.MF.code <- [ i ])
    instrs;
  L.build ~globals [ mf ]

let run ?(max_cost = 1_000_000L) instrs =
  let eng = E.create (image_of instrs) in
  (E.run ~max_cost eng, eng)

let exit_code (r : E.result) =
  match r.E.status with E.Exited c -> c | _ -> Alcotest.fail "expected clean exit"

let halt_with v = [ M.Mmov (R.ret_gpr, M.Imm v); M.Mhalt ]

let test_mov_and_halt () =
  let r, _ = run (halt_with 7L) in
  Alcotest.(check int) "exit 7" 7 (exit_code r)

let test_arith_flags () =
  (* 5 - 5 sets ZF; jcc eq taken *)
  let r, _ =
    run
      [
        M.Mmov (R.gpr 1, M.Imm 5L);
        M.Mbin (Refine_ir.Ir.Sub, R.gpr 1, R.gpr 1, M.Imm 5L);
        M.Mjcc (M.CEq, 4);
        M.Mhalt; (* skipped *)
        M.Mmov (R.ret_gpr, M.Imm 1L);
        M.Mhalt;
      ]
  in
  Alcotest.(check int) "took eq branch" 1 (exit_code r)

let test_signed_compare () =
  (* -1 < 1 signed *)
  let r, _ =
    run
      [
        M.Mmov (R.gpr 1, M.Imm (-1L));
        M.Mcmp (R.gpr 1, M.Imm 1L);
        M.Msetcc (M.CLt, R.ret_gpr);
        M.Mhalt;
      ]
  in
  Alcotest.(check int) "signed lt" 1 (exit_code r)

let test_float_nan_cc () =
  let nan_bits = Int64.bits_of_float Float.nan in
  let r, _ =
    run
      [
        M.Mmov (R.fpr 1, M.Imm nan_bits);
        M.Mmov (R.fpr 2, M.Imm (Int64.bits_of_float 1.0));
        M.Mfcmp (R.fpr 1, R.fpr 2);
        M.Msetcc (M.CFne, R.ret_gpr); (* true on NaN *)
        M.Msetcc (M.CFlt, R.gpr 1); (* false on NaN *)
        M.Mbin (Refine_ir.Ir.Shl, R.gpr 1, R.gpr 1, M.Imm 1L);
        M.Mbin (Refine_ir.Ir.Or, R.ret_gpr, R.ret_gpr, M.Reg (R.gpr 1));
        M.Mhalt;
      ]
  in
  Alcotest.(check int) "fne=1, flt=0" 1 (exit_code r)

let test_div_by_zero_trap () =
  let r, _ =
    run
      [
        M.Mmov (R.gpr 1, M.Imm 10L);
        M.Mmov (R.gpr 2, M.Imm 0L);
        M.Mbin (Refine_ir.Ir.Div, R.gpr 1, R.gpr 1, M.Reg (R.gpr 2));
        M.Mhalt;
      ]
  in
  (match r.E.status with
  | E.Trapped E.Div_by_zero -> ()
  | _ -> Alcotest.fail "expected div-by-zero trap")

let test_memory_fault () =
  let r, _ = run [ M.Mmov (R.gpr 1, M.Imm 0L); M.Mload (R.gpr 2, R.gpr 1, 0); M.Mhalt ] in
  (match r.E.status with
  | E.Trapped (E.Mem_fault 0) -> ()
  | _ -> Alcotest.fail "expected memory fault at 0")

let test_memory_fault_high () =
  let addr = Int64.of_int (Refine_ir.Memlayout.mem_size + 100) in
  let r, _ = run [ M.Mmov (R.gpr 1, M.Imm addr); M.Mstore (R.gpr 1, R.gpr 1, 0); M.Mhalt ] in
  (match r.E.status with
  | E.Trapped (E.Mem_fault _) -> ()
  | _ -> Alcotest.fail "expected memory fault")

let test_push_pop () =
  let r, _ =
    run
      [
        M.Mmov (R.gpr 1, M.Imm 123L);
        M.Mpush (R.gpr 1);
        M.Mpop R.ret_gpr;
        M.Mhalt;
      ]
  in
  Alcotest.(check int) "roundtrip" 123 (exit_code r)

let test_pushf_popf () =
  let r, _ =
    run
      [
        M.Mmov (R.gpr 1, M.Imm 5L);
        M.Mcmp (R.gpr 1, M.Imm 5L); (* ZF set *)
        M.Mpushf;
        M.Mmov (R.gpr 2, M.Imm 1L);
        M.Mcmp (R.gpr 2, M.Imm 9L); (* clobber flags *)
        M.Mpopf;
        M.Msetcc (M.CEq, R.ret_gpr); (* restored ZF *)
        M.Mhalt;
      ]
  in
  Alcotest.(check int) "flags restored" 1 (exit_code r)

let test_stack_overflow () =
  (* an infinite push loop overruns the stack region *)
  let r, _ =
    run ~max_cost:100_000_000L [ M.Mpush (R.gpr 1); M.Mjmp 0 ]
  in
  (match r.E.status with
  | E.Trapped E.Stack_overflow -> ()
  | _ -> Alcotest.fail "expected stack overflow")

let test_bad_return_address () =
  (* corrupting the stored return address crashes at ret *)
  let r, _ =
    run
      [
        M.Mmov (R.gpr 1, M.Imm 999_999L);
        M.Mpush (R.gpr 1);
        M.Mret;
      ]
  in
  (match r.E.status with
  | E.Trapped (E.Bad_pc _) -> ()
  | _ -> Alcotest.fail "expected bad pc")

let test_timeout () =
  let r, _ = run ~max_cost:1000L [ M.Mjmp 0 ] in
  (match r.E.status with
  | E.Timed_out -> ()
  | _ -> Alcotest.fail "expected timeout")

let test_xorbit () =
  let r, _ =
    run
      [
        M.Mmov (R.gpr 1, M.Imm 0L);
        M.Mmov (R.gpr 2, M.Imm 4L); (* bit index *)
        M.Mxorbit (R.gpr 1, R.gpr 2);
        M.Mmov (R.ret_gpr, M.Reg (R.gpr 1));
        M.Mhalt;
      ]
  in
  Alcotest.(check int) "bit 4 set" 16 (exit_code r)

let test_xorbitmem () =
  let r, _ =
    run
      [
        M.Mmov (R.gpr 1, M.Imm 0L);
        M.Mpush (R.gpr 1); (* [rsp] = 0 *)
        M.Mmov (R.gpr 2, M.Imm 3L);
        M.Mxorbitmem (R.rsp, 0, R.gpr 2);
        M.Mpop R.ret_gpr;
        M.Mhalt;
      ]
  in
  Alcotest.(check int) "bit 3 set in memory" 8 (exit_code r)

let test_extern_print () =
  let r, _ =
    run
      [
        M.Mmov (R.gpr 1, M.Imm 55L);
        M.Mcallext "print_int";
        M.Mmov (R.ret_gpr, M.Imm 0L);
        M.Mhalt;
      ]
  in
  Alcotest.(check string) "printed" "55\n" r.E.output

let test_extern_cost () =
  let r_plain, _ = run [ M.Mmov (R.ret_gpr, M.Imm 0L); M.Mhalt ] in
  let r_ext, _ =
    run [ M.Mmov (R.fpr 1, M.Imm (Int64.bits_of_float 1.0)); M.Mcallext "sin"; M.Mhalt ]
  in
  Alcotest.(check bool) "extern costs more than its instruction count" true
    (Int64.compare r_ext.E.cost (Int64.add r_plain.E.cost (Int64.of_int E.ext_call_cost)) >= 0)

let test_extern_exit () =
  let r, _ =
    run [ M.Mmov (R.gpr 1, M.Imm 3L); M.Mcallext "exit"; M.Mjmp 2 ]
  in
  Alcotest.(check int) "exit code" 3 (exit_code r)

let test_custom_handler_and_cost () =
  let called = ref 0 in
  let image = image_of [ M.Mcallext "my_fn"; M.Mmov (R.ret_gpr, M.Imm 0L); M.Mhalt ] in
  let eng =
    E.create
      ~ext_extra:[ ("my_fn", 7, fun _ -> incr called) ]
      image
  in
  let r = E.run eng in
  Alcotest.(check int) "handler called" 1 !called;
  (* 3 instructions + 7 extern cost *)
  Alcotest.(check int64) "cost" 10L r.E.cost

let test_post_hook_and_detach () =
  let seen = ref 0 in
  let image = image_of (halt_with 0L) in
  let eng = E.create image in
  eng.E.post_hook <-
    Some
      (fun e _ _ ->
        incr seen;
        if !seen = 1 then begin
          e.E.post_hook <- None;
          e.E.hook_cost <- 0
        end);
  eng.E.hook_cost <- 4;
  let r = E.run eng in
  Alcotest.(check int) "hook detached after first instr" 1 !seen;
  (* first instruction costs 1+4, second costs 1 *)
  Alcotest.(check int64) "hook cost charged while attached" 6L r.E.cost

let test_call_and_ret () =
  (* main calls f at index 3; f returns 9 *)
  let mf_main = MF.create "main" in
  let b = MF.add_block mf_main 0 in
  b.MF.code <- [ M.Mcall "f"; M.Mhalt ];
  let mf_f = MF.create "f" in
  let bf = MF.add_block mf_f 0 in
  bf.MF.code <- [ M.Mmov (R.ret_gpr, M.Imm 9L); M.Mret ];
  let image = L.build ~globals:[] [ mf_main; mf_f ] in
  let eng = E.create image in
  let r = E.run eng in
  Alcotest.(check int) "returned value" 9 (exit_code r);
  Alcotest.(check string) "func_of_pc" "f" image.L.func_of_pc.(2)

let test_globals_initialized () =
  let g = { Refine_ir.Ir.gname = "g"; gsize = 8; gbytes = Some "\x2a\x00\x00\x00\x00\x00\x00\x00" } in
  let image =
    image_of ~globals:[ g ]
      [
        M.Mmov (R.gpr 1, M.Imm (Int64.of_int Refine_ir.Memlayout.globals_base));
        M.Mload (R.ret_gpr, R.gpr 1, 0);
        M.Mhalt;
      ]
  in
  let eng = E.create image in
  let r = E.run eng in
  Alcotest.(check int) "init value" 42 (exit_code r)

let test_outputs_inputs_model () =
  (* the FI population predicate must agree with the outputs list *)
  let samples =
    [
      M.Mmov (R.gpr 1, M.Imm 0L);
      M.Mbin (Refine_ir.Ir.Add, R.gpr 1, R.gpr 1, M.Imm 1L);
      M.Mstore (R.gpr 1, R.gpr 2, 0);
      M.Mjmp 0;
      M.Mcmp (R.gpr 1, M.Imm 0L);
      M.Mpush (R.gpr 1);
      M.Mret;
      M.Mcallext "print_int";
      M.Mhalt;
    ]
  in
  List.iter
    (fun i ->
      Alcotest.(check bool)
        ("writes_register agrees with outputs: " ^ Refine_mir.Mprinter.to_string i)
        (M.outputs i <> []) (M.writes_register i))
    samples;
  (* an ALU op writes its destination and FLAGS: the paper's multi-output
     operand case *)
  Alcotest.(check int) "alu has two outputs" 2
    (List.length (M.outputs (M.Mbin (Refine_ir.Ir.Add, R.gpr 1, R.gpr 1, M.Imm 1L))))

let test_flags_width () =
  Alcotest.(check int) "flags width" 4 (R.width_bits R.flags);
  Alcotest.(check int) "gpr width" 64 (R.width_bits (R.gpr 3))

let tests =
  [
    Alcotest.test_case "mov/halt" `Quick test_mov_and_halt;
    Alcotest.test_case "arith sets flags" `Quick test_arith_flags;
    Alcotest.test_case "signed compare" `Quick test_signed_compare;
    Alcotest.test_case "NaN condition codes" `Quick test_float_nan_cc;
    Alcotest.test_case "div-by-zero trap" `Quick test_div_by_zero_trap;
    Alcotest.test_case "null deref trap" `Quick test_memory_fault;
    Alcotest.test_case "high address trap" `Quick test_memory_fault_high;
    Alcotest.test_case "push/pop" `Quick test_push_pop;
    Alcotest.test_case "pushf/popf" `Quick test_pushf_popf;
    Alcotest.test_case "stack overflow" `Quick test_stack_overflow;
    Alcotest.test_case "bad return address" `Quick test_bad_return_address;
    Alcotest.test_case "timeout" `Quick test_timeout;
    Alcotest.test_case "xorbit" `Quick test_xorbit;
    Alcotest.test_case "xorbitmem" `Quick test_xorbitmem;
    Alcotest.test_case "extern print" `Quick test_extern_print;
    Alcotest.test_case "extern cost" `Quick test_extern_cost;
    Alcotest.test_case "extern exit" `Quick test_extern_exit;
    Alcotest.test_case "custom ext handler" `Quick test_custom_handler_and_cost;
    Alcotest.test_case "post hook + detach" `Quick test_post_hook_and_detach;
    Alcotest.test_case "call/ret" `Quick test_call_and_ret;
    Alcotest.test_case "globals initialized" `Quick test_globals_initialized;
    Alcotest.test_case "outputs model" `Quick test_outputs_inputs_model;
    Alcotest.test_case "flags width" `Quick test_flags_width;
  ]
