(* Benchmark-program tests: all 14 programs of Table 3 compile at O0/O2,
   interpreter and machine agree, the runs are deterministic and their
   golden outputs are pinned against regressions. *)

module Reg = Refine_bench_progs.Registry
module F = Refine_minic.Frontend
module In = Refine_ir.Interp
module E = Refine_machine.Exec

let machine_run source =
  let m = F.compile source in
  Refine_passes.Pipeline.optimize Refine_passes.Pipeline.O2 m;
  let image = Refine_passes.Pipeline.compile m in
  let eng = E.create image in
  E.run ~max_steps:100_000_000L eng

let test_registry () =
  Alcotest.(check int) "14 programs" 14 (List.length Reg.all);
  List.iter
    (fun name -> Alcotest.(check string) "find works" name (Reg.find name).Reg.name)
    Reg.names;
  Alcotest.(check bool) "unknown rejected" true
    (try ignore (Reg.find "nope"); false with Invalid_argument _ -> true)

let test_paper_names () =
  (* all 14 of the paper's Table 3 programs are present *)
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " present") true (List.mem n Reg.names))
    [
      "AMG2013"; "CoMD"; "HPCCG-1.0"; "lulesh"; "XSBench"; "miniFE"; "BT"; "CG"; "DC"; "EP";
      "FT"; "LU"; "SP"; "UA";
    ]

let agreement (b : Reg.bench) () =
  let m0 = F.compile b.Reg.source in
  let i0 = In.run ~fuel:100_000_000 m0 in
  Alcotest.(check int) "exit 0 at O0" 0 i0.In.exit_code;
  Alcotest.(check bool) "produces output" true (String.length i0.In.output > 0);
  let m2 = F.compile b.Reg.source in
  Refine_passes.Pipeline.optimize ~verify:true Refine_passes.Pipeline.O2 m2;
  let i2 = In.run ~fuel:100_000_000 m2 in
  Alcotest.(check string) "O0 = O2 output" i0.In.output i2.In.output;
  let r = machine_run b.Reg.source in
  (match r.E.status with
  | E.Exited 0 -> ()
  | E.Exited c -> Alcotest.fail (Printf.sprintf "machine exit %d" c)
  | E.Trapped tr -> Alcotest.fail (E.string_of_trap tr)
  | _ -> Alcotest.fail "machine did not finish");
  Alcotest.(check string) "interp = machine output" i0.In.output r.E.output;
  (* determinism *)
  let r2 = machine_run b.Reg.source in
  Alcotest.(check string) "deterministic" r.E.output r2.E.output

(* Golden output prefixes, pinned so numerical regressions are caught.
   (First line of each program's output.) *)
let golden_first_lines =
  [
    ("AMG2013", "6.74428");
    ("CoMD", "-42.3895");
    ("HPCCG-1.0", "11.5915");
    ("lulesh", "0.615584");
    ("XSBench", "1981.0829658340804");
    ("miniFE", "1.8640515052385485");
    ("BT", "76.664644186297394");
    ("CG", "2017");
    ("DC", "53635.599999999991");
    ("EP", "1165");
    ("FT", "16.4656");
    ("LU", "0.70764275786080777");
    ("SP", "11.904456863088315");
    ("UA", "72");
  ]

let test_golden_first_lines () =
  List.iter
    (fun (name, expected) ->
      let b = Reg.find name in
      let r = machine_run b.Reg.source in
      let first = List.hd (String.split_on_char '\n' r.E.output) in
      Alcotest.(check string) (name ^ " first output line") expected first)
    golden_first_lines

let test_dynamic_sizes_reasonable () =
  (* programs must be big enough for meaningful FI populations and small
     enough for 1068-sample campaigns *)
  List.iter
    (fun (b : Reg.bench) ->
      let r = machine_run b.Reg.source in
      Alcotest.(check bool)
        (Printf.sprintf "%s steps %Ld in range" b.Reg.name r.E.steps)
        true
        (Int64.compare r.E.steps 20_000L > 0 && Int64.compare r.E.steps 2_000_000L < 0))
    Reg.all

let tests =
  [
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "paper program names" `Quick test_paper_names;
    Alcotest.test_case "golden first lines" `Slow test_golden_first_lines;
    Alcotest.test_case "dynamic sizes" `Slow test_dynamic_sizes_reasonable;
  ]
  @ List.map
      (fun (b : Reg.bench) ->
        Alcotest.test_case ("agreement: " ^ b.Reg.name) `Slow (agreement b))
      Reg.all
