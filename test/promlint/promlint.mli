(** Miniature promtool-style lint for the Prometheus text exposition
    format.  [lint dump] returns one human-readable complaint per
    conformance violation (sample without TYPE, duplicate series, bad
    label syntax, unparseable value, non-cumulative histogram buckets,
    missing +Inf bucket, +Inf <> _count, missing _sum/_count); the empty
    list means a strict parser accepts the dump.  Test-only — run it
    over every metrics dump the suite produces. *)

val lint : string -> string list
