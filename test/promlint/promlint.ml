(* A miniature promtool-style lint for the Prometheus text exposition
   format (version 0.0.4), strict enough to catch the conformance bugs a
   real scraper would choke on: samples without a preceding TYPE,
   duplicate series, malformed label syntax, unparseable values,
   histogram buckets that are not cumulative, and histograms missing the
   +Inf bucket or with +Inf <> _count.  [lint] returns human-readable
   complaints; the empty list means the dump parses cleanly. *)

type sample = { s_name : string; s_labels : (string * string) list; s_value : string }

let is_name_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let valid_name s =
  s <> ""
  && is_name_start s.[0]
  && String.for_all is_name_char s

(* label names may not contain ':' *)
let valid_label_name s =
  s <> ""
  && (let c = s.[0] in (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_')
  && String.for_all (fun c -> is_name_char c && c <> ':') s

let valid_value s =
  s = "+Inf" || s = "-Inf" || s = "NaN"
  || match float_of_string_opt s with Some _ -> true | None -> false

exception Bad of string

(* parse one sample line: name{k="v",...} value *)
let parse_sample line =
  let n = String.length line in
  let i = ref 0 in
  while !i < n && is_name_char line.[!i] do incr i done;
  let name = String.sub line 0 !i in
  if not (valid_name name) then raise (Bad (Printf.sprintf "invalid metric name in %S" line));
  let labels = ref [] in
  (if !i < n && line.[!i] = '{' then begin
     incr i;
     let rec pairs () =
       if !i >= n then raise (Bad (Printf.sprintf "unterminated label set in %S" line));
       if line.[!i] = '}' then incr i
       else begin
         let start = !i in
         while !i < n && line.[!i] <> '=' do incr i done;
         if !i >= n then raise (Bad (Printf.sprintf "label without '=' in %S" line));
         let k = String.sub line start (!i - start) in
         if not (valid_label_name k) then
           raise (Bad (Printf.sprintf "invalid label name %S in %S" k line));
         incr i;
         if !i >= n || line.[!i] <> '"' then
           raise (Bad (Printf.sprintf "label value not quoted in %S" line));
         incr i;
         let buf = Buffer.create 16 in
         let rec str () =
           if !i >= n then raise (Bad (Printf.sprintf "unterminated label value in %S" line));
           match line.[!i] with
           | '"' -> incr i
           | '\\' ->
               if !i + 1 >= n then raise (Bad (Printf.sprintf "trailing backslash in %S" line));
               (match line.[!i + 1] with
               | '\\' -> Buffer.add_char buf '\\'
               | '"' -> Buffer.add_char buf '"'
               | 'n' -> Buffer.add_char buf '\n'
               | c -> raise (Bad (Printf.sprintf "bad escape '\\%c' in %S" c line)));
               i := !i + 2;
               str ()
           | c ->
               Buffer.add_char buf c;
               incr i;
               str ()
         in
         str ();
         labels := (k, Buffer.contents buf) :: !labels;
         if !i < n && line.[!i] = ',' then begin incr i; pairs () end
         else if !i < n && line.[!i] = '}' then begin incr i end
         else raise (Bad (Printf.sprintf "expected ',' or '}' in %S" line))
       end
     in
     pairs ()
   end);
  if !i >= n || line.[!i] <> ' ' then
    raise (Bad (Printf.sprintf "expected space before value in %S" line));
  incr i;
  let value = String.sub line !i (n - !i) in
  if not (valid_value value) then raise (Bad (Printf.sprintf "unparseable value %S in %S" value line));
  { s_name = name; s_labels = List.rev !labels; s_value = value }

(* strip a _bucket/_sum/_count suffix to find the declaring family *)
let family name =
  let strip suf =
    let ls = String.length suf and ln = String.length name in
    if ln > ls && String.sub name (ln - ls) ls = suf then Some (String.sub name 0 (ln - ls))
    else None
  in
  match strip "_bucket" with
  | Some f -> f
  | None -> ( match strip "_sum" with Some f -> f | None -> ( match strip "_count" with Some f -> f | None -> name))

let lint text =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let types : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let helps : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let seen_series : (string * (string * string) list, unit) Hashtbl.t = Hashtbl.create 64 in
  let samples = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iter
    (fun line ->
      if line = "" then ()
      else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
        match String.split_on_char ' ' (String.sub line 7 (String.length line - 7)) with
        | [ name; kind ] ->
            if not (valid_name name) then err "TYPE line with invalid name: %S" line;
            if not (List.mem kind [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ]) then
              err "TYPE line with unknown kind %S" kind;
            if Hashtbl.mem types name then err "duplicate TYPE for %s" name;
            Hashtbl.replace types name kind
        | _ -> err "malformed TYPE line: %S" line
      end
      else if String.length line >= 7 && String.sub line 0 7 = "# HELP " then begin
        (match String.index_opt (String.sub line 7 (String.length line - 7)) ' ' with
        | None -> err "malformed HELP line: %S" line
        | Some i ->
            let name = String.sub line 7 i in
            if not (valid_name name) then err "HELP line with invalid name: %S" line
            else begin
              if Hashtbl.mem helps name then err "duplicate HELP for %s" name;
              Hashtbl.replace helps name ()
            end)
      end
      else if String.length line >= 1 && line.[0] = '#' then ()
      else
        match parse_sample line with
        | exception Bad m -> err "%s" m
        | s ->
            let fam = family s.s_name in
            if not (Hashtbl.mem types fam || Hashtbl.mem types s.s_name) then
              err "sample %s without a preceding TYPE" s.s_name;
            let key = (s.s_name, List.sort compare s.s_labels) in
            if Hashtbl.mem seen_series key then
              err "duplicate series %s{%s}" s.s_name
                (String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) s.s_labels));
            Hashtbl.replace seen_series key ();
            samples := s :: !samples)
    lines;
  let samples = List.rev !samples in
  (* histogram shape: per (family, non-le labels): buckets cumulative,
     +Inf present, +Inf = _count, _sum and _count present *)
  Hashtbl.iter
    (fun name kind ->
      if kind = "histogram" then begin
        let buckets = ref [] and counts = ref [] and sums = ref [] in
        List.iter
          (fun s ->
            if s.s_name = name ^ "_bucket" then
              buckets :=
                (List.filter (fun (k, _) -> k <> "le") s.s_labels,
                 List.assoc_opt "le" s.s_labels, s.s_value)
                :: !buckets
            else if s.s_name = name ^ "_count" then counts := (s.s_labels, s.s_value) :: !counts
            else if s.s_name = name ^ "_sum" then sums := (s.s_labels, s.s_value) :: !sums)
          samples;
        let groups =
          List.sort_uniq compare (List.map (fun (g, _, _) -> g) !buckets)
        in
        if groups = [] then err "histogram %s has no buckets" name;
        List.iter
          (fun g ->
            let mine = List.filter (fun (g', _, _) -> g' = g) (List.rev !buckets) in
            (match List.filter (fun (_, le, _) -> le = None) mine with
            | [] -> ()
            | _ -> err "histogram %s bucket without le label" name);
            let parsed =
              List.filter_map
                (fun (_, le, v) ->
                  match le with
                  | Some le ->
                      let b = if le = "+Inf" then infinity else float_of_string le in
                      Some (b, float_of_string v)
                  | None -> None)
                mine
            in
            let sorted = List.sort (fun (a, _) (b, _) -> compare a b) parsed in
            let rec cumulative = function
              | (_, c1) :: ((_, c2) :: _ as rest) ->
                  if c2 < c1 then err "histogram %s buckets not cumulative" name;
                  cumulative rest
              | _ -> ()
            in
            cumulative sorted;
            (match List.rev sorted with
            | (b, last) :: _ ->
                if b <> infinity then err "histogram %s missing +Inf bucket" name
                else begin
                  match List.assoc_opt g !counts with
                  | None -> err "histogram %s missing _count" name
                  | Some c ->
                      if float_of_string c <> last then
                        err "histogram %s: +Inf bucket %g <> _count %s" name last c
                end
            | [] -> err "histogram %s missing +Inf bucket" name);
            if List.assoc_opt g !sums = None then err "histogram %s missing _sum" name)
          groups
      end)
    types;
  List.rev !errors
