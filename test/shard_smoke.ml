(* Sharded-campaign smoke test: the crash-recovery drills of DESIGN.md §16
   run for real, with processes and signals.

   1. worker SIGKILLed mid-campaign: the final Table 6 must be
      bit-identical to an in-process reference run, every sample must be
      accounted for (zero lost cells), and the kill must be visible in the
      reassignment + restart metrics;
   2. worker SIGSTOPped (a hang): only the heartbeat deadline can reap
      it — same equality afterwards;
   3. coordinator crash (abort mid-campaign) + journal resume: the
      resumed campaign completes the journal and matches the reference.

   Run via:  dune build @shard-smoke *)

module C = Refine_campaign.Coordinator
module E = Refine_campaign.Experiment
module J = Refine_campaign.Journal
module Rep = Refine_campaign.Report
module Obs = Refine_obs
module Reg = Refine_bench_progs.Registry

(* the coordinator re-execs this very binary as its workers *)
let () = Refine_campaign.Worker.maybe_exec ()

let programs = [ "DC"; "EP" ]
let samples = 12
let seed = 7
let total = List.length programs * List.length Rep.tools * samples
let srcs = List.map (fun n -> (n, (Reg.find n).Reg.source)) programs

let counter name =
  match Obs.Metrics.find name [] with Some (Obs.Metrics.Counter v) -> v | _ -> 0L

let table6 cells = Rep.table6 cells programs

let check name cond =
  if not cond then begin
    Printf.printf "[shard-smoke] FAIL: %s\n%!" name;
    exit 1
  end

let fully_resolved cells =
  List.for_all (fun (c : E.cell) -> E.total c.E.counts = samples) cells

let () =
  Obs.Control.enable ();

  (* reference: ordinary in-process run *)
  let reference = E.run_matrix ~domains:2 ~samples ~seed srcs Rep.tools in
  let t6_ref = table6 reference in
  check "reference fully resolved" (fully_resolved reference);

  (* drill 1: SIGKILL one of two workers mid-flight.  The kill lands while
     the worker owns an unfinished chunk (triggered 2 samples in); if the
     scheduling race ever lets that chunk complete first, re-run the drill
     at a later trigger point — the equality checks hold every time, only
     the reassignment visibility needs an in-flight victim. *)
  let rec kill_drill attempt after =
    let reassigned0 = counter "refine_shard_reassigned_cells_total" in
    let restarts0 = counter "refine_shard_worker_restarts_total" in
    let options =
      {
        C.default_options with
        C.workers = 2;
        chaos = { C.no_chaos with C.kill_worker = Some (0, after) };
      }
    in
    let cells = C.run_matrix ~options ~samples ~seed srcs Rep.tools in
    check "killed run: table6 bit-identical" (table6 cells = t6_ref);
    check "killed run: zero lost cells" (fully_resolved cells);
    check "killed run: worker restarted"
      (counter "refine_shard_worker_restarts_total" > restarts0);
    let reassigned = counter "refine_shard_reassigned_cells_total" in
    if reassigned > reassigned0 then
      Printf.printf "[shard-smoke] kill drill: %Ld samples reassigned, results identical\n%!"
        (Int64.sub reassigned reassigned0)
    else if attempt < 3 then kill_drill (attempt + 1) (after + 5)
    else check "reassignment observed" false
  in
  kill_drill 1 2;

  (* drill 2: SIGSTOP = a hang; the worker stops heartbeating and only the
     deadline can reap it *)
  let restarts0 = counter "refine_shard_worker_restarts_total" in
  let options =
    {
      C.default_options with
      C.workers = 2;
      deadline_s = 0.5;
      chaos = { C.no_chaos with C.stop_worker = Some (1, 2) };
    }
  in
  let cells = C.run_matrix ~options ~samples ~seed srcs Rep.tools in
  check "hung run: table6 bit-identical" (table6 cells = t6_ref);
  check "hung run: zero lost cells" (fully_resolved cells);
  check "hung run: deadline reaped the hang"
    (counter "refine_shard_worker_restarts_total" > restarts0);
  Printf.printf "[shard-smoke] hang drill: deadline reaped the stopped worker, results identical\n%!";

  (* drill 3: coordinator crash + journal resume *)
  let path = Filename.temp_file "refine_shard_smoke" ".journal" in
  let j = J.create path in
  let options =
    {
      C.default_options with
      C.workers = 2;
      chaos = { C.no_chaos with C.abort_after = Some (total / 4) };
    }
  in
  (match C.run_matrix ~options ~journal:j ~samples ~seed srcs Rep.tools with
  | _ -> check "abort chaos fired" false
  | exception C.Aborted n ->
    J.close j;
    Printf.printf "[shard-smoke] coordinator crashed after %d samples (journal: %d)\n%!" n
      (J.length j);
    check "partial journal" (J.length j > 0 && J.length j < total));
  let j2 = J.create ~resume:true path in
  let options = { C.default_options with C.workers = 2 } in
  let resumed = C.run_matrix ~options ~journal:j2 ~samples ~seed srcs Rep.tools in
  check "resumed run: table6 bit-identical" (table6 resumed = t6_ref);
  check "resumed run: journal complete" (J.length j2 = total);
  Sys.remove path;
  Printf.printf
    "[shard-smoke] PASS: kill, hang and coordinator-crash drills all bit-identical (%d samples)\n%!"
    total
