(* Tests for the observability layer: histogram bucket edges, cross-domain
   counter merge determinism, span nesting and unwind-on-exception, phase
   accounting, enable-gating, Prometheus dump shape (linted), fleet
   snapshot merging, trace-file loading with the torn-tail policy, span
   trace context, and the live status server. *)

module Obs = Refine_obs
module M = Obs.Metrics

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

(* each test starts from a clean, enabled registry *)
let with_obs f () =
  Obs.Control.enable ();
  M.reset ();
  Obs.Span.set_memory_sink ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Span.close_sink ();
      M.reset ();
      Obs.Control.disable ())
    f

(* ---- histogram bucketing ---- *)

let test_bucket_edges () =
  let bounds = [| 1.0; 2.0; 5.0 |] in
  (* Prometheus le semantics: value lands in the first bucket whose upper
     bound is >= v; above every bound, in the +Inf slot *)
  Alcotest.(check int) "below first" 0 (M.bucket_index bounds 0.5);
  Alcotest.(check int) "exactly on an edge is inclusive" 0 (M.bucket_index bounds 1.0);
  Alcotest.(check int) "between edges" 1 (M.bucket_index bounds 1.5);
  Alcotest.(check int) "on the last finite edge" 2 (M.bucket_index bounds 5.0);
  Alcotest.(check int) "above all bounds -> +Inf slot" 3 (M.bucket_index bounds 5.00001);
  Alcotest.(check int) "negative" 0 (M.bucket_index bounds (-1.0))

let test_histogram_observe () =
  let h = M.histogram ~buckets:[| 1.0; 2.0; 5.0 |] "t_hist_observe" in
  List.iter (M.observe h) [ 0.5; 1.0; 1.5; 5.0; 9.0 ];
  match M.find "t_hist_observe" [] with
  | Some (M.Histogram hv) ->
    Alcotest.(check (array int64)) "per-bucket counts" [| 2L; 1L; 1L; 1L |] hv.M.counts;
    Alcotest.(check int64) "count" 5L hv.M.count;
    Alcotest.(check (float 1e-9)) "sum" 17.0 hv.M.sum
  | _ -> Alcotest.fail "histogram not found"

let test_histogram_bad_buckets () =
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Metrics.histogram: buckets not increasing") (fun () ->
      ignore (M.histogram ~buckets:[| 1.0; 1.0 |] "t_hist_bad"))

(* ---- counters: dedup, kind clash, disabled gating ---- *)

let test_counter_dedup () =
  let a = M.counter ~labels:[ ("k", "v") ] "t_dedup" in
  let b = M.counter ~labels:[ ("k", "v") ] "t_dedup" in
  M.inc a;
  M.inc b;
  match M.find "t_dedup" [ ("k", "v") ] with
  | Some (M.Counter 2L) -> ()
  | Some (M.Counter n) -> Alcotest.failf "expected 2, got %Ld" n
  | _ -> Alcotest.fail "counter not found"

let test_kind_clash () =
  ignore (M.counter "t_clash");
  (try
     ignore (M.gauge "t_clash");
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_disabled_gating () =
  let c = M.counter "t_gated" in
  M.inc c;
  Obs.Control.disable ();
  M.inc c;
  M.add c 10;
  Obs.Control.enable ();
  match M.find "t_gated" [] with
  | Some (M.Counter 1L) -> ()
  | Some (M.Counter n) -> Alcotest.failf "disabled increments leaked: %Ld" n
  | _ -> Alcotest.fail "counter not found"

(* ---- cross-domain merge determinism ---- *)

let test_cross_domain_merge () =
  let c = M.counter "t_domains" in
  let h = M.histogram ~buckets:[| 10.0; 100.0 |] "t_domains_hist" in
  let worker k () =
    for i = 1 to 1000 do
      M.inc c;
      M.observe h (float_of_int ((i + k) mod 150))
    done
  in
  let ds = List.init 4 (fun k -> Domain.spawn (worker k)) in
  worker 4 ();
  List.iter Domain.join ds;
  (match M.find "t_domains" [] with
  | Some (M.Counter n) -> Alcotest.(check int64) "merged count" 5000L n
  | _ -> Alcotest.fail "counter not found");
  match M.find "t_domains_hist" [] with
  | Some (M.Histogram hv) ->
    Alcotest.(check int64) "merged observations" 5000L hv.M.count;
    Alcotest.(check int64) "bucket sum matches total" 5000L
      (Array.fold_left Int64.add 0L hv.M.counts)
  | _ -> Alcotest.fail "histogram not found"

(* merged totals must not depend on which domain recorded what: two runs
   with different work distributions agree *)
let test_merge_schedule_independent () =
  let run split =
    M.reset ();
    let c = M.counter "t_sched" in
    let d = Domain.spawn (fun () -> for _ = 1 to split do M.inc c done) in
    for _ = 1 to 2000 - split do
      M.inc c
    done;
    Domain.join d;
    match M.find "t_sched" [] with Some (M.Counter n) -> n | _ -> -1L
  in
  Alcotest.(check int64) "distribution-independent" (run 1) (run 1999)

(* ---- spans ---- *)

let test_span_nesting () =
  let v =
    Obs.Span.with_ "outer" (fun () ->
        Obs.Span.with_ "inner" (fun () ->
            Alcotest.(check int) "depth inside" 2 (Obs.Span.depth ());
            Obs.Span.add_cost 7L;
            41)
        + 1)
  in
  Alcotest.(check int) "value threaded" 42 v;
  Alcotest.(check int) "depth unwound" 0 (Obs.Span.depth ());
  let events = Obs.Span.drain () in
  let names = List.map (fun (e : Obs.Span.event) -> e.Obs.Span.name) events in
  (* inner closes before outer *)
  Alcotest.(check (list string)) "emission order" [ "inner"; "outer" ] names;
  let inner = List.hd events in
  Alcotest.(check int) "inner depth" 1 inner.Obs.Span.depth;
  Alcotest.(check int64) "cost attributed to innermost" 7L inner.Obs.Span.cost;
  Alcotest.(check bool) "ok" true inner.Obs.Span.ok

let test_span_unwind_on_exception () =
  (try Obs.Span.with_ "boom" (fun () -> failwith "no") with Failure _ -> ());
  Alcotest.(check int) "stack unwound" 0 (Obs.Span.depth ());
  match Obs.Span.drain () with
  | [ e ] ->
    Alcotest.(check string) "event still emitted" "boom" e.Obs.Span.name;
    Alcotest.(check bool) "marked not-ok" false e.Obs.Span.ok
  | l -> Alcotest.failf "expected 1 event, got %d" (List.length l)

let test_span_json () =
  ignore (Obs.Span.with_ ~attrs:[ ("tool", "REFINE\"x") ] "p" (fun () -> ()));
  match Obs.Span.drain () with
  | [ e ] ->
    let j = Obs.Span.to_json e in
    Alcotest.(check bool) "one line" false (String.contains j '\n');
    Alcotest.(check bool) "name present" true (contains j "\"name\":\"p\"");
    (* the quote inside the attr value must be escaped *)
    Alcotest.(check bool) "attrs escaped" true (contains j "REFINE\\\"x")
  | l -> Alcotest.failf "expected 1 event, got %d" (List.length l)

let test_span_disabled () =
  Obs.Control.disable ();
  let v = Obs.Span.with_ "off" (fun () -> 9) in
  Obs.Control.enable ();
  Alcotest.(check int) "thunk still runs" 9 v;
  Alcotest.(check int) "no events" 0 (List.length (Obs.Span.drain ()))

(* ---- phases ---- *)

let test_phase_accumulates () =
  let p = Obs.Phase.create () in
  Obs.Phase.add p "compile" 1.0;
  Obs.Phase.add p "execute" 2.0;
  Obs.Phase.add p "compile" 0.5;
  Alcotest.(check (float 1e-9)) "summed" 1.5 (Obs.Phase.get p "compile");
  Alcotest.(check (float 1e-9)) "other" 2.0 (Obs.Phase.get p "execute");
  Alcotest.(check (float 1e-9)) "missing is 0" 0.0 (Obs.Phase.get p "instrument");
  Alcotest.(check (float 1e-9)) "total" 3.5 (Obs.Phase.total p);
  Alcotest.(check (list string)) "insertion order" [ "compile"; "execute" ]
    (List.map fst (Obs.Phase.to_list p))

let test_phase_time_on_exception () =
  let p = Obs.Phase.create () in
  (try Obs.Phase.time p "x" (fun () -> failwith "no") with Failure _ -> ());
  Alcotest.(check bool) "elapsed still recorded" true (Obs.Phase.get p "x" >= 0.0);
  Alcotest.(check (list string)) "phase registered" [ "x" ] (List.map fst (Obs.Phase.to_list p))

(* ---- Prometheus dump ---- *)

let test_prometheus_dump () =
  let c = M.counter ~help:"a counter" ~labels:[ ("tool", "REFINE") ] "t_dump_total" in
  M.add c 3;
  let h = M.histogram ~buckets:[| 0.1; 1.0 |] "t_dump_seconds" in
  M.observe h 0.05;
  M.observe h 5.0;
  let d = M.dump () in
  Alcotest.(check bool) "TYPE line" true (contains d "# TYPE t_dump_total counter");
  Alcotest.(check bool) "HELP line" true (contains d "# HELP t_dump_total a counter");
  Alcotest.(check bool) "labeled sample" true (contains d "t_dump_total{tool=\"REFINE\"} 3");
  (* histogram buckets are cumulative and end with +Inf = _count *)
  Alcotest.(check bool) "le=0.1" true (contains d "t_dump_seconds_bucket{le=\"0.1\"} 1");
  Alcotest.(check bool) "le=+Inf" true (contains d "t_dump_seconds_bucket{le=\"+Inf\"} 2");
  Alcotest.(check bool) "count" true (contains d "t_dump_seconds_count 2");
  Alcotest.(check (list string)) "promlint clean" [] (Promlint.lint d)

(* the lint itself must not be vacuous *)
let test_promlint_catches () =
  Alcotest.(check bool) "missing TYPE flagged" true (Promlint.lint "foo_total 3\n" <> []);
  Alcotest.(check bool) "unparseable value flagged" true
    (Promlint.lint "# TYPE foo_total counter\nfoo_total abc\n" <> []);
  Alcotest.(check bool) "duplicate series flagged" true
    (Promlint.lint "# TYPE foo_total counter\nfoo_total 1\nfoo_total 2\n" <> []);
  Alcotest.(check bool) "non-cumulative buckets flagged" true
    (Promlint.lint
       "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n"
    <> []);
  Alcotest.(check bool) "missing +Inf flagged" true
    (Promlint.lint "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n" <> [])

(* ---- fleet snapshot merge (DESIGN.md §17) ---- *)

let qm_item v =
  { M.x_name = "qm_total"; x_labels = []; x_help = ""; x_value = M.Counter (Int64.of_int v) }

let read_qm () = match M.find "qm_total" [] with Some (M.Counter n) -> n | _ -> -1L

(* workers ship *cumulative* snapshots; the coordinator's merge must land
   on the same totals under any interleaving, reordering, or replay *)
let prop_merge_order_insensitive =
  QCheck.Test.make ~name:"merge_snapshot is order-insensitive and idempotent" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 3) (small_list small_nat)) (small_list small_nat))
    (fun (per_source, keys) ->
      let cums =
        List.mapi
          (fun si incs ->
            let c = ref 0 in
            List.map
              (fun i ->
                c := !c + i;
                (si, !c))
              incs)
          per_source
      in
      let pairs = List.concat cums in
      let expected =
        List.fold_left (fun a l -> match List.rev l with (_, c) :: _ -> a + c | [] -> a) 0 cums
      in
      let run order =
        M.reset ();
        let states = Array.init (List.length per_source) (fun _ -> M.merge_source ()) in
        List.iter (fun (si, v) -> M.merge_snapshot states.(si) [ qm_item v ]) order;
        read_qm ()
      in
      let in_order = run pairs in
      let shuffled =
        match keys with
        | [] -> List.rev pairs
        | ks ->
            let nk = List.length ks in
            List.map snd
              (List.stable_sort compare (List.mapi (fun i p -> (List.nth ks (i mod nk), p)) pairs))
      in
      (* apply the shuffle twice: replayed snapshots must be no-ops *)
      let replayed = run (shuffled @ shuffled) in
      M.reset ();
      (if pairs <> [] then in_order = Int64.of_int expected else true)
      && in_order = replayed || (pairs = [] && replayed = -1L))

let test_merge_histogram () =
  let st = M.merge_source () in
  let item ?(name = "qm_h") bounds counts sum count =
    { M.x_name = name; x_labels = []; x_help = "";
      x_value = M.Histogram { M.bounds; counts; sum; count } }
  in
  M.merge_snapshot st [ item [| 1.0; 2.0 |] [| 1L; 0L; 0L |] 0.5 1L ];
  M.merge_snapshot st [ item [| 1.0; 2.0 |] [| 2L; 1L; 0L |] 2.5 3L ];
  (* replaying an older snapshot is a no-op *)
  M.merge_snapshot st [ item [| 1.0; 2.0 |] [| 1L; 0L; 0L |] 0.5 1L ];
  (* a snapshot with mismatched bucket bounds is dropped, not applied *)
  M.merge_snapshot st [ item [| 5.0 |] [| 9L; 9L |] 9.0 9L ];
  match M.find "qm_h" [] with
  | Some (M.Histogram hv) ->
    Alcotest.(check (array int64)) "counts" [| 2L; 1L; 0L |] hv.M.counts;
    Alcotest.(check int64) "count" 3L hv.M.count;
    Alcotest.(check (float 1e-9)) "sum" 2.5 hv.M.sum
  | _ -> Alcotest.fail "merged histogram not found"

let test_export_feeds_merge () =
  let c = M.counter ~help:"h" ~labels:[ ("t", "x") ] "t_exp_total" in
  M.add c 5;
  let items = M.export () in
  M.reset ();
  let st = M.merge_source () in
  M.merge_snapshot st items;
  match M.find "t_exp_total" [ ("t", "x") ] with
  | Some (M.Counter 5L) -> ()
  | Some (M.Counter n) -> Alcotest.failf "expected 5, got %Ld" n
  | _ -> Alcotest.fail "exported counter did not merge back"

(* ---- span trace context (distributed tracing) ---- *)

let test_span_context_reparent () =
  Obs.Span.set_context ~trace:"t-1" ~parent:42 ();
  ignore (Obs.Span.with_ "outer" (fun () -> Obs.Span.with_ "inner" (fun () -> ())));
  Obs.Span.clear_context ();
  match Obs.Span.drain () with
  | [ inner; outer ] ->
    Alcotest.(check string) "trace propagated" "t-1" outer.Obs.Span.trace;
    Alcotest.(check int) "root parent comes from context" 42 outer.Obs.Span.parent;
    Alcotest.(check bool) "inner parented under outer" true
      (inner.Obs.Span.parent = outer.Obs.Span.span_id);
    Alcotest.(check bool) "ids distinct and nonzero" true
      (inner.Obs.Span.span_id <> 0 && outer.Obs.Span.span_id <> 0
      && inner.Obs.Span.span_id <> outer.Obs.Span.span_id)
  | l -> Alcotest.failf "expected 2 events, got %d" (List.length l)

(* ---- trace-file loader ---- *)

let write_lines path lines =
  let oc = open_out path in
  List.iter (fun l -> output_string oc l) lines;
  close_out oc

let test_tracefile_load () =
  ignore (Obs.Span.with_ ~attrs:[ ("k", "v\"w") ] "a" (fun () -> ()));
  ignore (Obs.Span.with_ "b" (fun () -> ()));
  let events = Obs.Span.drain () in
  let path = Filename.temp_file "refine" ".trace.jsonl" in
  write_lines path (List.map (fun e -> Obs.Span.to_json e ^ "\n") events);
  let r = Obs.Tracefile.load path in
  Sys.remove path;
  Alcotest.(check int) "all events load" 2 (List.length r.Obs.Tracefile.events);
  Alcotest.(check int) "none skipped" 0 r.Obs.Tracefile.skipped;
  Alcotest.(check bool) "not torn" false r.Obs.Tracefile.torn;
  let a = List.hd r.Obs.Tracefile.events and a0 = List.hd events in
  Alcotest.(check string) "name survives" a0.Obs.Span.name a.Obs.Span.name;
  Alcotest.(check (list (pair string string))) "attrs survive" a0.Obs.Span.attrs a.Obs.Span.attrs;
  Alcotest.(check int) "span id survives" a0.Obs.Span.span_id a.Obs.Span.span_id

let test_tracefile_torn_tail () =
  ignore (Obs.Span.with_ "whole" (fun () -> ()));
  ignore (Obs.Span.with_ "torn" (fun () -> ()));
  match Obs.Span.drain () with
  | [ e1; e2 ] ->
    let path = Filename.temp_file "refine" ".trace.jsonl" in
    let half = Obs.Span.to_json e2 in
    write_lines path
      [ Obs.Span.to_json e1 ^ "\n"; String.sub half 0 (String.length half / 2) ];
    let r = Obs.Tracefile.load path in
    Sys.remove path;
    (* same policy as the journal: a file not ending in '\n' drops the
       final partial line without attempting a parse *)
    Alcotest.(check int) "only the whole line loads" 1 (List.length r.Obs.Tracefile.events);
    Alcotest.(check bool) "flagged torn" true r.Obs.Tracefile.torn;
    Alcotest.(check int) "torn tail not counted as skipped" 0 r.Obs.Tracefile.skipped
  | l -> Alcotest.failf "expected 2 events, got %d" (List.length l)

let test_tracefile_garbage_line () =
  ignore (Obs.Span.with_ "good" (fun () -> ()));
  match Obs.Span.drain () with
  | [ e ] ->
    let path = Filename.temp_file "refine" ".trace.jsonl" in
    write_lines path [ Obs.Span.to_json e ^ "\n"; "{{{not json}}}\n"; Obs.Span.to_json e ^ "\n" ];
    let r = Obs.Tracefile.load path in
    Sys.remove path;
    Alcotest.(check int) "good lines load" 2 (List.length r.Obs.Tracefile.events);
    Alcotest.(check int) "garbage counted skipped" 1 r.Obs.Tracefile.skipped;
    Alcotest.(check bool) "not torn" false r.Obs.Tracefile.torn
  | l -> Alcotest.failf "expected 1 event, got %d" (List.length l)

(* ---- live status server ---- *)

let http_get port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let buf = Buffer.create 256 and b = Bytes.create 1024 in
      let rec go () =
        match Unix.read fd b 0 1024 with
        | 0 -> Buffer.contents buf
        | n ->
          Buffer.add_subbytes buf b 0 n;
          go ()
      in
      go ())

let test_serve_roundtrip () =
  let srv = Obs.Serve.create () in
  let port = Obs.Serve.port srv in
  Obs.Serve.set_status srv (fun () ->
      {
        Obs.Serve.p_samples_done = 3;
        p_samples_total = 10;
        p_cells_done = 1;
        p_cells_total = 4;
        p_cells_quarantined = 0;
        p_workers = None;
        p_finished = false;
      });
  ignore (M.counter ~help:"served" "t_served_total");
  let finished = Atomic.make false in
  (* the server is poll-driven and single-threaded, so the blocking
     client lives in its own domain while this one polls *)
  let client =
    Domain.spawn (fun () ->
        let r =
          ( http_get port "/healthz",
            http_get port "/metrics",
            http_get port "/status",
            http_get port "/nope" )
        in
        Atomic.set finished true;
        r)
  in
  while not (Atomic.get finished) do
    Obs.Serve.poll srv;
    Unix.sleepf 0.002
  done;
  Obs.Serve.poll srv;
  let h, m, st, nf = Domain.join client in
  Obs.Serve.close srv;
  Alcotest.(check bool) "healthz 200" true (contains h "200");
  Alcotest.(check bool) "healthz body" true (contains h "ok");
  Alcotest.(check bool) "metrics content type" true (contains m "text/plain");
  Alcotest.(check bool) "metrics body served" true (contains m "t_served_total");
  Alcotest.(check bool) "status is json" true (contains st "application/json");
  Alcotest.(check bool) "status samples" true (contains st "\"samples_done\":3");
  Alcotest.(check bool) "status not finished" true (contains st "\"finished\":false");
  Alcotest.(check bool) "unknown path 404" true (contains nf "404")

let qcheck = QCheck_alcotest.to_alcotest

let tests =
  [
    Alcotest.test_case "histogram bucket edges" `Quick (with_obs test_bucket_edges);
    Alcotest.test_case "histogram observe" `Quick (with_obs test_histogram_observe);
    Alcotest.test_case "histogram rejects bad buckets" `Quick (with_obs test_histogram_bad_buckets);
    Alcotest.test_case "counter dedup by (name, labels)" `Quick (with_obs test_counter_dedup);
    Alcotest.test_case "kind clash rejected" `Quick (with_obs test_kind_clash);
    Alcotest.test_case "disabled recording is inert" `Quick (with_obs test_disabled_gating);
    Alcotest.test_case "cross-domain merge" `Quick (with_obs test_cross_domain_merge);
    Alcotest.test_case "merge is schedule-independent" `Quick
      (with_obs test_merge_schedule_independent);
    Alcotest.test_case "span nesting and cost attribution" `Quick (with_obs test_span_nesting);
    Alcotest.test_case "span unwinds on exception" `Quick (with_obs test_span_unwind_on_exception);
    Alcotest.test_case "span JSON shape" `Quick (with_obs test_span_json);
    Alcotest.test_case "spans inert when disabled" `Quick (with_obs test_span_disabled);
    Alcotest.test_case "phase accumulation" `Quick (with_obs test_phase_accumulates);
    Alcotest.test_case "phase time survives exceptions" `Quick
      (with_obs test_phase_time_on_exception);
    Alcotest.test_case "prometheus dump" `Quick (with_obs test_prometheus_dump);
    Alcotest.test_case "promlint catches violations" `Quick test_promlint_catches;
    qcheck prop_merge_order_insensitive;
    Alcotest.test_case "histogram snapshot merge" `Quick (with_obs test_merge_histogram);
    Alcotest.test_case "export feeds merge" `Quick (with_obs test_export_feeds_merge);
    Alcotest.test_case "span trace context re-parents" `Quick (with_obs test_span_context_reparent);
    Alcotest.test_case "tracefile round-trip" `Quick (with_obs test_tracefile_load);
    Alcotest.test_case "tracefile torn tail dropped" `Quick (with_obs test_tracefile_torn_tail);
    Alcotest.test_case "tracefile garbage line skipped" `Quick
      (with_obs test_tracefile_garbage_line);
    Alcotest.test_case "status server round-trip" `Quick (with_obs test_serve_roundtrip);
  ]
