(* Tests for the observability layer: histogram bucket edges, cross-domain
   counter merge determinism, span nesting and unwind-on-exception, phase
   accounting, enable-gating, Prometheus dump shape. *)

module Obs = Refine_obs
module M = Obs.Metrics

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

(* each test starts from a clean, enabled registry *)
let with_obs f () =
  Obs.Control.enable ();
  M.reset ();
  Obs.Span.set_memory_sink ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Span.close_sink ();
      M.reset ();
      Obs.Control.disable ())
    f

(* ---- histogram bucketing ---- *)

let test_bucket_edges () =
  let bounds = [| 1.0; 2.0; 5.0 |] in
  (* Prometheus le semantics: value lands in the first bucket whose upper
     bound is >= v; above every bound, in the +Inf slot *)
  Alcotest.(check int) "below first" 0 (M.bucket_index bounds 0.5);
  Alcotest.(check int) "exactly on an edge is inclusive" 0 (M.bucket_index bounds 1.0);
  Alcotest.(check int) "between edges" 1 (M.bucket_index bounds 1.5);
  Alcotest.(check int) "on the last finite edge" 2 (M.bucket_index bounds 5.0);
  Alcotest.(check int) "above all bounds -> +Inf slot" 3 (M.bucket_index bounds 5.00001);
  Alcotest.(check int) "negative" 0 (M.bucket_index bounds (-1.0))

let test_histogram_observe () =
  let h = M.histogram ~buckets:[| 1.0; 2.0; 5.0 |] "t_hist_observe" in
  List.iter (M.observe h) [ 0.5; 1.0; 1.5; 5.0; 9.0 ];
  match M.find "t_hist_observe" [] with
  | Some (M.Histogram hv) ->
    Alcotest.(check (array int64)) "per-bucket counts" [| 2L; 1L; 1L; 1L |] hv.M.counts;
    Alcotest.(check int64) "count" 5L hv.M.count;
    Alcotest.(check (float 1e-9)) "sum" 17.0 hv.M.sum
  | _ -> Alcotest.fail "histogram not found"

let test_histogram_bad_buckets () =
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Metrics.histogram: buckets not increasing") (fun () ->
      ignore (M.histogram ~buckets:[| 1.0; 1.0 |] "t_hist_bad"))

(* ---- counters: dedup, kind clash, disabled gating ---- *)

let test_counter_dedup () =
  let a = M.counter ~labels:[ ("k", "v") ] "t_dedup" in
  let b = M.counter ~labels:[ ("k", "v") ] "t_dedup" in
  M.inc a;
  M.inc b;
  match M.find "t_dedup" [ ("k", "v") ] with
  | Some (M.Counter 2L) -> ()
  | Some (M.Counter n) -> Alcotest.failf "expected 2, got %Ld" n
  | _ -> Alcotest.fail "counter not found"

let test_kind_clash () =
  ignore (M.counter "t_clash");
  (try
     ignore (M.gauge "t_clash");
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_disabled_gating () =
  let c = M.counter "t_gated" in
  M.inc c;
  Obs.Control.disable ();
  M.inc c;
  M.add c 10;
  Obs.Control.enable ();
  match M.find "t_gated" [] with
  | Some (M.Counter 1L) -> ()
  | Some (M.Counter n) -> Alcotest.failf "disabled increments leaked: %Ld" n
  | _ -> Alcotest.fail "counter not found"

(* ---- cross-domain merge determinism ---- *)

let test_cross_domain_merge () =
  let c = M.counter "t_domains" in
  let h = M.histogram ~buckets:[| 10.0; 100.0 |] "t_domains_hist" in
  let worker k () =
    for i = 1 to 1000 do
      M.inc c;
      M.observe h (float_of_int ((i + k) mod 150))
    done
  in
  let ds = List.init 4 (fun k -> Domain.spawn (worker k)) in
  worker 4 ();
  List.iter Domain.join ds;
  (match M.find "t_domains" [] with
  | Some (M.Counter n) -> Alcotest.(check int64) "merged count" 5000L n
  | _ -> Alcotest.fail "counter not found");
  match M.find "t_domains_hist" [] with
  | Some (M.Histogram hv) ->
    Alcotest.(check int64) "merged observations" 5000L hv.M.count;
    Alcotest.(check int64) "bucket sum matches total" 5000L
      (Array.fold_left Int64.add 0L hv.M.counts)
  | _ -> Alcotest.fail "histogram not found"

(* merged totals must not depend on which domain recorded what: two runs
   with different work distributions agree *)
let test_merge_schedule_independent () =
  let run split =
    M.reset ();
    let c = M.counter "t_sched" in
    let d = Domain.spawn (fun () -> for _ = 1 to split do M.inc c done) in
    for _ = 1 to 2000 - split do
      M.inc c
    done;
    Domain.join d;
    match M.find "t_sched" [] with Some (M.Counter n) -> n | _ -> -1L
  in
  Alcotest.(check int64) "distribution-independent" (run 1) (run 1999)

(* ---- spans ---- *)

let test_span_nesting () =
  let v =
    Obs.Span.with_ "outer" (fun () ->
        Obs.Span.with_ "inner" (fun () ->
            Alcotest.(check int) "depth inside" 2 (Obs.Span.depth ());
            Obs.Span.add_cost 7L;
            41)
        + 1)
  in
  Alcotest.(check int) "value threaded" 42 v;
  Alcotest.(check int) "depth unwound" 0 (Obs.Span.depth ());
  let events = Obs.Span.drain () in
  let names = List.map (fun (e : Obs.Span.event) -> e.Obs.Span.name) events in
  (* inner closes before outer *)
  Alcotest.(check (list string)) "emission order" [ "inner"; "outer" ] names;
  let inner = List.hd events in
  Alcotest.(check int) "inner depth" 1 inner.Obs.Span.depth;
  Alcotest.(check int64) "cost attributed to innermost" 7L inner.Obs.Span.cost;
  Alcotest.(check bool) "ok" true inner.Obs.Span.ok

let test_span_unwind_on_exception () =
  (try Obs.Span.with_ "boom" (fun () -> failwith "no") with Failure _ -> ());
  Alcotest.(check int) "stack unwound" 0 (Obs.Span.depth ());
  match Obs.Span.drain () with
  | [ e ] ->
    Alcotest.(check string) "event still emitted" "boom" e.Obs.Span.name;
    Alcotest.(check bool) "marked not-ok" false e.Obs.Span.ok
  | l -> Alcotest.failf "expected 1 event, got %d" (List.length l)

let test_span_json () =
  ignore (Obs.Span.with_ ~attrs:[ ("tool", "REFINE\"x") ] "p" (fun () -> ()));
  match Obs.Span.drain () with
  | [ e ] ->
    let j = Obs.Span.to_json e in
    Alcotest.(check bool) "one line" false (String.contains j '\n');
    Alcotest.(check bool) "name present" true (contains j "\"name\":\"p\"");
    (* the quote inside the attr value must be escaped *)
    Alcotest.(check bool) "attrs escaped" true (contains j "REFINE\\\"x")
  | l -> Alcotest.failf "expected 1 event, got %d" (List.length l)

let test_span_disabled () =
  Obs.Control.disable ();
  let v = Obs.Span.with_ "off" (fun () -> 9) in
  Obs.Control.enable ();
  Alcotest.(check int) "thunk still runs" 9 v;
  Alcotest.(check int) "no events" 0 (List.length (Obs.Span.drain ()))

(* ---- phases ---- *)

let test_phase_accumulates () =
  let p = Obs.Phase.create () in
  Obs.Phase.add p "compile" 1.0;
  Obs.Phase.add p "execute" 2.0;
  Obs.Phase.add p "compile" 0.5;
  Alcotest.(check (float 1e-9)) "summed" 1.5 (Obs.Phase.get p "compile");
  Alcotest.(check (float 1e-9)) "other" 2.0 (Obs.Phase.get p "execute");
  Alcotest.(check (float 1e-9)) "missing is 0" 0.0 (Obs.Phase.get p "instrument");
  Alcotest.(check (float 1e-9)) "total" 3.5 (Obs.Phase.total p);
  Alcotest.(check (list string)) "insertion order" [ "compile"; "execute" ]
    (List.map fst (Obs.Phase.to_list p))

let test_phase_time_on_exception () =
  let p = Obs.Phase.create () in
  (try Obs.Phase.time p "x" (fun () -> failwith "no") with Failure _ -> ());
  Alcotest.(check bool) "elapsed still recorded" true (Obs.Phase.get p "x" >= 0.0);
  Alcotest.(check (list string)) "phase registered" [ "x" ] (List.map fst (Obs.Phase.to_list p))

(* ---- Prometheus dump ---- *)

let test_prometheus_dump () =
  let c = M.counter ~help:"a counter" ~labels:[ ("tool", "REFINE") ] "t_dump_total" in
  M.add c 3;
  let h = M.histogram ~buckets:[| 0.1; 1.0 |] "t_dump_seconds" in
  M.observe h 0.05;
  M.observe h 5.0;
  let d = M.dump () in
  Alcotest.(check bool) "TYPE line" true (contains d "# TYPE t_dump_total counter");
  Alcotest.(check bool) "HELP line" true (contains d "# HELP t_dump_total a counter");
  Alcotest.(check bool) "labeled sample" true (contains d "t_dump_total{tool=\"REFINE\"} 3");
  (* histogram buckets are cumulative and end with +Inf = _count *)
  Alcotest.(check bool) "le=0.1" true (contains d "t_dump_seconds_bucket{le=\"0.1\"} 1");
  Alcotest.(check bool) "le=+Inf" true (contains d "t_dump_seconds_bucket{le=\"+Inf\"} 2");
  Alcotest.(check bool) "count" true (contains d "t_dump_seconds_count 2")

let tests =
  [
    Alcotest.test_case "histogram bucket edges" `Quick (with_obs test_bucket_edges);
    Alcotest.test_case "histogram observe" `Quick (with_obs test_histogram_observe);
    Alcotest.test_case "histogram rejects bad buckets" `Quick (with_obs test_histogram_bad_buckets);
    Alcotest.test_case "counter dedup by (name, labels)" `Quick (with_obs test_counter_dedup);
    Alcotest.test_case "kind clash rejected" `Quick (with_obs test_kind_clash);
    Alcotest.test_case "disabled recording is inert" `Quick (with_obs test_disabled_gating);
    Alcotest.test_case "cross-domain merge" `Quick (with_obs test_cross_domain_merge);
    Alcotest.test_case "merge is schedule-independent" `Quick
      (with_obs test_merge_schedule_independent);
    Alcotest.test_case "span nesting and cost attribution" `Quick (with_obs test_span_nesting);
    Alcotest.test_case "span unwinds on exception" `Quick (with_obs test_span_unwind_on_exception);
    Alcotest.test_case "span JSON shape" `Quick (with_obs test_span_json);
    Alcotest.test_case "spans inert when disabled" `Quick (with_obs test_span_disabled);
    Alcotest.test_case "phase accumulation" `Quick (with_obs test_phase_accumulates);
    Alcotest.test_case "phase time survives exceptions" `Quick
      (with_obs test_phase_time_on_exception);
    Alcotest.test_case "prometheus dump" `Quick (with_obs test_prometheus_dump);
  ]
