(* Differential tests for the pre-decoded engine (DESIGN.md §19).

   The decoded executor — per-pc dispatch closures, fused
   superinstructions with batched retirement, per-snapshot decode caching
   — must be invisible in results: every observable (outcome, steps,
   cost, output, final architectural state) is byte-identical to the
   legacy per-opcode interpreter over random programs, engine-level
   faults, truncated budgets with mid-sequence resets, Instr_image
   overlays, and fixed-seed campaigns under all five fault models. *)

module M = Refine_mir.Minstr
module R = Refine_mir.Reg
module X = Refine_machine.Exec
module L = Refine_backend.Layout
module P = Refine_support.Prng
module F = Refine_core.Fault
module T = Refine_core.Tool
module Ex = Refine_campaign.Experiment

let compile_image seed =
  let m = Refine_minic.Frontend.compile (Test_semantics.gen_program seed) in
  Refine_passes.Pipeline.optimize Refine_passes.Pipeline.O2 m;
  Refine_passes.Pipeline.compile m

(* Digest of everything an outside observer could distinguish after a
   run: the full register file (FLAGS included), data memory, pc and the
   retired step/cost counters.  Catches divergence that the result record
   alone would mask (e.g. a superinstruction writing FLAGS early). *)
let fingerprint (e : X.t) =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string (e.X.regs, Digest.bytes e.X.mem, e.X.pc, e.X.steps, e.X.cost, e.X.heap) []))

(* --- engine-level differential over random programs -------------------- *)

(* One observation protocol applied to a legacy and a decoded engine of
   the same snapshot: a truncated run at a random step budget (stresses
   the batched-retirement budget guards and bulk-burn clamps), a reset, a
   memory-cell fault + full run, another reset, then an Instr_image
   overlay run (stresses the fusion-free dispatch table + overlay
   decode).  Every leg must agree byte-for-byte including the state
   fingerprint at each stopping point. *)
let observe ~cut ~addr ~bit ~ov_pc ~ov_instr (e : X.t) =
  let budget = X.run ~max_steps:(Int64.of_int cut) ~max_cost:20_000_000L e in
  let fp_budget = fingerprint e in
  X.reset e;
  X.flip_mem_bit e ~addr ~bit;
  let faulted = X.run ~max_cost:20_000_000L e in
  let fp_faulted = fingerprint e in
  X.reset e;
  X.set_overlay e ~pc:ov_pc ov_instr;
  let overlaid = X.run ~max_cost:20_000_000L e in
  (budget, fp_budget, faulted, fp_faulted, overlaid, fingerprint e)

let prop_decoded_matches_legacy =
  QCheck.Test.make
    ~name:"decoded = legacy: outcome, steps, fingerprint (budgets, faults, overlays)" ~count:10
    QCheck.(pair (int_range 1 5000) (int_range 1 30_000))
    (fun (seed, cut) ->
      let image = compile_image seed in
      let snap = X.snapshot image in
      let rng = P.create (seed lxor 0x5eed) in
      let addr = Refine_ir.Memlayout.null_guard + P.int rng 4096 in
      let bit = P.int rng 8 in
      let ov_pc = P.int rng (Array.length image.L.code) in
      let ov_instr = if P.int rng 4 = 0 then None else Some image.L.code.(image.L.entry) in
      let leg = X.create_from_snapshot snap in
      let dec = X.create_from_snapshot snap in
      X.install_decoded dec (Some (X.decode image));
      let go = observe ~cut ~addr ~bit ~ov_pc ~ov_instr in
      let ol = go leg and od = go dec in
      if ol <> od then
        QCheck.Test.fail_reportf "legacy/decoded divergence (seed %d, cut %d)" seed cut;
      true)

(* --- reset erases decoded-overlay state in the same pass ---------------- *)

let src_tiny =
  {|
int main() {
  int i; float s = 0.0;
  for (i = 0; i < 40; i = i + 1) { s = s + tofloat(i * i) * 0.125; }
  print_float(s);
  return 0;
}
|}

let prepared_tiny = lazy (T.prepare T.Pinfi src_tiny)

let prop_decoded_reset_pristine =
  QCheck.Test.make ~name:"decoded overlay state never outlives reset" ~count:25
    QCheck.(pair (int_range 0 100_000) bool)
    (fun (off, legal) ->
      let p = Lazy.force prepared_tiny in
      let eng = X.create_from_snapshot p.T.snap in
      X.install_decoded eng (Some (X.decode p.T.image));
      let pristine = eng.X.d_active in
      let pc = p.T.image.L.entry + (off mod 8) in
      X.set_overlay eng ~pc (if legal then Some p.T.image.L.code.(p.T.image.L.entry) else None);
      eng.X.fi_mask <- 0xF0L;
      (* arming the overlay must swap dispatch to the fusion-free table (a
         superinstruction spanning the overlaid pc would execute the
         pristine encoding) and, for a decodable mutation, build the
         overlay closure *)
      assert (not (eng.X.d_active == pristine));
      assert ((eng.X.d_overlay <> None) = legal);
      X.reset eng;
      X.decoded eng
      && eng.X.d_overlay = None
      && eng.X.d_active == pristine
      && eng.X.overlay_pc = -1
      && eng.X.overlay_instr = None
      && eng.X.fi_mask = 0L)

let test_decoded_illegal_overlay () =
  let p = Lazy.force prepared_tiny in
  let eng = X.create_from_snapshot p.T.snap in
  X.install_decoded eng (Some (X.decode p.T.image));
  X.set_overlay eng ~pc:eng.X.pc None;
  let r = X.run eng in
  match r.X.status with
  | X.Trapped (X.Illegal_instr _) -> ()
  | _ -> Alcotest.failf "expected Illegal_instr, got %a" Test_fastpath.pp_result r

(* --- engine interface: install / detach / compatibility ----------------- *)

let test_install_detach () =
  let image = compile_image 42 in
  let snap = X.snapshot image in
  let eng = X.create_from_snapshot snap in
  Alcotest.(check string) "legacy by default" "legacy" (X.engine_name eng);
  X.install_decoded eng (Some (X.decode image));
  Alcotest.(check string) "decoded when installed" "decoded" (X.engine_name eng);
  let r1 = X.run eng in
  X.install_decoded eng None;
  Alcotest.(check string) "legacy after detach" "legacy" (X.engine_name eng);
  X.reset eng;
  let r2 = X.run eng in
  Alcotest.check Test_fastpath.result_t "detached run identical" r1 r2;
  let other = compile_image 43 in
  Alcotest.check_raises "foreign decode rejected"
    (Invalid_argument "Exec.install_decoded: decoded program was built from a different image")
    (fun () -> X.install_decoded eng (Some (X.decode other)))

let test_superinstr_counts () =
  (* one site of each idiom: a counted self-latch (loop-back), a
     load-op-store, a forward compare-branch, and — as dead code behind
     the halt — a REFINE FI splice in the exact shape the backend pass
     emits (fi-splice) *)
  let image =
    Test_fastpath.image_of
      [
        M.Mmov (R.gpr 1, M.Imm 100L);
        M.Mbin (Refine_ir.Ir.Sub, R.gpr 1, R.gpr 1, M.Imm 1L) (* pc 1: latch head *);
        M.Mcmp (R.gpr 1, M.Imm 0L);
        M.Mjcc (M.CNe, 1);
        M.Mload (R.gpr 2, R.rsp, -8);
        M.Mbin (Refine_ir.Ir.Add, R.gpr 2, R.gpr 2, M.Imm 1L);
        M.Mstore (R.gpr 2, R.rsp, -8);
        M.Mcmp (R.gpr 2, M.Imm 0L);
        M.Mjcc (M.CEq, 10);
        M.Mhalt;
        M.Mhalt;
        M.Mpush (R.gpr 0) (* pc 11: splice head (dead code) *);
        M.Mpushf;
        M.Mcallext "fi_sel_instr";
        M.Mcmp (R.ret_gpr, M.Imm 0L);
        M.Mjcc (M.CEq, 18);
        M.Mjmp 17;
        M.Mhalt (* setup block stand-in *);
        M.Mpopf (* pc 18: post *);
        M.Mpop (R.gpr 0);
        M.Mhalt;
      ]
  in
  let dp = X.decode image in
  let counts = X.superinstr_counts dp in
  Array.iteri
    (fun i idiom ->
      Alcotest.(check bool) (idiom ^ " fused at least once") true (counts.(i) >= 1))
    X.idioms;
  (* and the fused program still runs identically *)
  let snap = X.snapshot image in
  let leg = X.create_from_snapshot snap in
  let dec = X.create_from_snapshot snap in
  X.install_decoded dec (Some dp);
  Alcotest.check Test_fastpath.result_t "fused idioms identical"
    (X.run leg) (X.run dec)

(* --- fixed-seed campaign equality, decoded on/off, all five models ------ *)

let all_models =
  [
    F.Reg_bit;
    F.Mem_cell;
    F.Instr_image;
    F.Multi_bit { bits = 3; burst = false };
    F.Multi_bit { bits = 4; burst = true };
  ]

let test_campaign_equality_all_models () =
  let programs = [ ("ints", Test_fastpath.src_int); ("floats", Test_fastpath.src_float) ] in
  let tools = [ T.Refine; T.Llfi ] in
  Fun.protect
    ~finally:(fun () -> T.use_decode := true)
    (fun () ->
      List.iter
        (fun model ->
          let run_matrix () =
            T.reset_artifact_caches ();
            Test_fastpath.matrix_summary
              (Ex.run_matrix ~model ~domains:2 ~samples:20 ~seed:11 programs tools)
          in
          T.use_decode := false;
          let legacy = run_matrix () in
          T.use_decode := true;
          let decoded = run_matrix () in
          Alcotest.(check string)
            (F.string_of_model model ^ ": outcome table decoded = legacy") legacy decoded)
        all_models)

let qcheck = QCheck_alcotest.to_alcotest

let tests =
  [
    qcheck prop_decoded_matches_legacy;
    qcheck prop_decoded_reset_pristine;
    Alcotest.test_case "illegal overlay traps under decoded dispatch" `Quick
      test_decoded_illegal_overlay;
    Alcotest.test_case "install/detach/foreign-image checks" `Quick test_install_detach;
    Alcotest.test_case "all four idioms fuse and run identically" `Quick test_superinstr_counts;
    Alcotest.test_case "fixed-seed campaigns: decoded = legacy for all 5 models" `Slow
      test_campaign_equality_all_models;
  ]
