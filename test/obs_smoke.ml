(* End-to-end smoke test for the observability layer.

   A tiny 2-program x 2-tool campaign runs with metrics and span tracing
   enabled; afterwards the JSONL trace must parse line by line, the
   Prometheus dump must contain well-formed series, and the counters the
   campaign is guaranteed to touch must be nonzero.

   Run via:  dune build @obs-smoke *)

module E = Refine_campaign.Experiment
module T = Refine_core.Tool
module Reg = Refine_bench_progs.Registry
module Obs = Refine_obs
module M = Obs.Metrics

let fail fmt = Printf.ksprintf (fun s -> print_endline ("[obs-smoke] FAIL: " ^ s); exit 1) fmt

(* ---- minimal JSON validator (objects, arrays, strings, numbers, atoms);
   enough to reject any malformed trace line without a json dependency ---- *)

let json_valid (s : string) =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance () else raise Exit
  in
  let literal l =
    let ln = String.length l in
    if !pos + ln <= n && String.sub s !pos ln = l then pos := !pos + ln else raise Exit
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> raise Exit
  and string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> raise Exit
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> raise Exit
          done
        | _ -> raise Exit);
        go ()
      | Some _ -> advance (); go ()
    in
    go ()
  and number () =
    let digits () =
      let saw = ref false in
      while (match peek () with Some '0' .. '9' -> true | _ -> false) do
        saw := true;
        advance ()
      done;
      if not !saw then raise Exit
    in
    if peek () = Some '-' then advance ();
    digits ();
    if peek () = Some '.' then begin advance (); digits () end;
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ())
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else
      let rec members () =
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> advance (); members ()
        | Some '}' -> advance ()
        | _ -> raise Exit
      in
      members ()
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else
      let rec elems () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> advance (); elems ()
        | Some ']' -> advance ()
        | _ -> raise Exit
      in
      elems ()
  in
  try
    value ();
    skip_ws ();
    !pos = n
  with Exit -> false

let read_lines path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")

let counter_total name =
  List.fold_left
    (fun acc (n, _, v) ->
      match v with M.Counter c when n = name -> Int64.add acc c | _ -> acc)
    0L (M.snapshot ())

let () =
  let programs = [ "DC"; "EP" ] in
  let tools = [ T.Refine; T.Pinfi ] in
  let samples = 12 and seed = 5 in
  let srcs = List.map (fun n -> (n, (Reg.find n).Reg.source)) programs in
  let trace = Filename.temp_file "refine_obs" ".trace.jsonl" in
  let prom = Filename.temp_file "refine_obs" ".prom" in

  Obs.Control.enable ();
  Obs.Span.set_file_sink trace;
  let cells = E.run_matrix ~samples ~seed srcs tools in
  Obs.Span.close_sink ();
  M.save prom;

  (* the campaign itself must have been healthy *)
  List.iter
    (fun (c : E.cell) ->
      if E.total c.E.counts <> samples then
        fail "%s/%s resolved %d of %d samples" c.E.program (T.kind_name c.E.tool)
          (E.total c.E.counts) samples)
    cells;

  (* every trace line is valid JSON and the expected span names appear *)
  let lines = read_lines trace in
  if lines = [] then fail "trace %s is empty" trace;
  List.iteri
    (fun i l -> if not (json_valid l) then fail "trace line %d is not valid JSON: %s" (i + 1) l)
    lines;
  let has_span name =
    List.exists
      (fun l ->
        let needle = Printf.sprintf "\"name\":\"%s\"" name in
        let ln = String.length l and nn = String.length needle in
        let rec go i = i + nn <= ln && (String.sub l i nn = needle || go (i + 1)) in
        go 0)
      lines
  in
  List.iter
    (fun s -> if not (has_span s) then fail "no '%s' span in trace" s)
    [ "prepare"; "inject"; "sample"; "execute" ];
  Printf.printf "[obs-smoke] trace: %d valid JSONL events\n%!" (List.length lines);

  (* key counters are nonzero *)
  let expect_nonzero name =
    let v = counter_total name in
    if v <= 0L then fail "counter %s is %Ld" name v;
    Printf.printf "[obs-smoke] %s = %Ld\n%!" name v
  in
  List.iter expect_nonzero
    [
      "refine_campaign_samples_total";
      "refine_campaign_cells_total";
      "refine_exec_steps_total";
      "refine_fi_site_hits_total";
      "refine_run_cost_units_total";
      "refine_supervisor_tasks_total";
    ];

  (* the Prometheus dump exists and carries the histogram plumbing *)
  let dump = String.concat "\n" (read_lines prom) in
  let contains needle =
    let lh = String.length dump and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub dump i ln = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun n -> if not (contains n) then fail "prometheus dump lacks %s" n)
    [ "# TYPE refine_campaign_samples_total counter"; "refine_span_duration_seconds_bucket"; "le=\"+Inf\"" ];

  (* the raw dump must survive a strict exposition-format parser *)
  let raw =
    let ic = open_in prom in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  (match Promlint.lint raw with
  | [] -> print_endline "[obs-smoke] promlint: dump is clean"
  | errs -> fail "promlint: %s" (String.concat "; " errs));

  (* overhead attribution reached the cells *)
  List.iter
    (fun (c : E.cell) ->
      if c.E.timing.E.execute_s <= 0.0 then
        fail "%s/%s has no execute time attributed" c.E.program (T.kind_name c.E.tool))
    cells;

  Sys.remove trace;
  Sys.remove prom;
  print_endline "[obs-smoke] PASS: metrics + trace + overhead attribution all live"
