(* Semantic-preservation property tests: randomly generated MinC programs
   must behave identically under (a) the IR reference interpreter at O0,
   (b) the interpreter at O2, (c) the compiled machine code at O0 and
   (d) at O2.  This pins the whole compiler + simulator stack to one
   semantics and guards every optimization and backend pass at once. *)

module P = Refine_support.Prng
module F = Refine_minic.Frontend
module In = Refine_ir.Interp
module E = Refine_machine.Exec

(* --- random program generator -------------------------------------------
   Generates terminating, trap-free programs: loops are bounded counters,
   divisors are forced nonzero, array indices are taken modulo the length. *)

type genv = {
  rng : P.t;
  mutable ints : string list;
  mutable floats : string list;
  mutable depth : int;
}

let pick g l = List.nth l (P.int g.rng (List.length l))

let rec gen_int_expr g =
  g.depth <- g.depth + 1;
  let leaf () =
    match P.int g.rng 3 with
    | 0 -> string_of_int (P.int g.rng 100 - 50)
    | 1 when g.ints <> [] -> pick g g.ints
    | _ -> string_of_int (P.int g.rng 10)
  in
  let e =
    if g.depth > 4 then leaf ()
    else
      match P.int g.rng 9 with
      | 0 | 1 -> leaf ()
      | 8 -> Printf.sprintf "helper_i(%s, %s)" (gen_int_expr g) (gen_int_expr g)
      | 2 -> Printf.sprintf "(%s + %s)" (gen_int_expr g) (gen_int_expr g)
      | 3 -> Printf.sprintf "(%s - %s)" (gen_int_expr g) (gen_int_expr g)
      | 4 -> Printf.sprintf "(%s * %s)" (gen_int_expr g) (gen_int_expr g)
      | 5 -> Printf.sprintf "(%s / ((%s & 7) + 1))" (gen_int_expr g) (gen_int_expr g)
      | 6 -> Printf.sprintf "(%s %% ((%s & 15) + 1))" (gen_int_expr g) (gen_int_expr g)
      | _ -> (
        match P.int g.rng 4 with
        | 0 -> Printf.sprintf "(%s & %s)" (gen_int_expr g) (gen_int_expr g)
        | 1 -> Printf.sprintf "(%s ^ %s)" (gen_int_expr g) (gen_int_expr g)
        | 2 -> Printf.sprintf "(%s << (%s & 7))" (gen_int_expr g) (gen_int_expr g)
        | _ -> Printf.sprintf "(%s > %s)" (gen_int_expr g) (gen_int_expr g))
  in
  g.depth <- g.depth - 1;
  e

let rec gen_float_expr g =
  g.depth <- g.depth + 1;
  let leaf () =
    match P.int g.rng 3 with
    | 0 -> Printf.sprintf "%.3f" (P.float g.rng *. 8.0 -. 4.0)
    | 1 when g.floats <> [] -> pick g g.floats
    | _ -> Printf.sprintf "tofloat(%s)" (gen_int_expr g)
  in
  let e =
    if g.depth > 4 then leaf ()
    else
      match P.int g.rng 9 with
      | 0 | 1 -> leaf ()
      | 7 -> Printf.sprintf "helper_f(%s, %s)" (gen_float_expr g) (gen_float_expr g)
      | 8 -> Printf.sprintf "use_arr(arr, %s)" (gen_int_expr g)
      | 2 -> Printf.sprintf "(%s + %s)" (gen_float_expr g) (gen_float_expr g)
      | 3 -> Printf.sprintf "(%s - %s)" (gen_float_expr g) (gen_float_expr g)
      | 4 -> Printf.sprintf "(%s * %s)" (gen_float_expr g) (gen_float_expr g)
      | 5 -> Printf.sprintf "fabs(%s)" (gen_float_expr g)
      | _ -> Printf.sprintf "(%s * 0.5 + 1.25)" (gen_float_expr g)
  in
  g.depth <- g.depth - 1;
  e

let gen_cond g =
  Printf.sprintf "(%s %s %s)" (gen_int_expr g)
    (pick g [ "<"; ">"; "=="; "!="; "<="; ">=" ])
    (gen_int_expr g)

let rec gen_stmt g ~indent ~loop_depth buf =
  let pad = String.make indent ' ' in
  match P.int g.rng 10 with
  | 0 | 1 when g.ints <> [] ->
    Buffer.add_string buf
      (Printf.sprintf "%s%s = %s;\n" pad (pick g g.ints) (gen_int_expr g))
  | 2 | 3 when g.floats <> [] ->
    Buffer.add_string buf
      (Printf.sprintf "%s%s = %s;\n" pad (pick g g.floats) (gen_float_expr g))
  | 4 | 5 ->
    Buffer.add_string buf (Printf.sprintf "%sif %s {\n" pad (gen_cond g));
    gen_stmt g ~indent:(indent + 2) ~loop_depth buf;
    if P.bool g.rng then begin
      Buffer.add_string buf (Printf.sprintf "%s} else {\n" pad);
      gen_stmt g ~indent:(indent + 2) ~loop_depth buf
    end;
    Buffer.add_string buf (Printf.sprintf "%s}\n" pad)
  | 6 when loop_depth < 2 ->
    let v = Printf.sprintf "it%d_%d" indent loop_depth in
    Buffer.add_string buf
      (Printf.sprintf "%sfor (%s = 0; %s < %d; %s = %s + 1) {\n" pad v v
         (2 + P.int g.rng 6) v v);
    gen_stmt g ~indent:(indent + 2) ~loop_depth:(loop_depth + 1) buf;
    Buffer.add_string buf (Printf.sprintf "%s}\n" pad)
  | 7 ->
    (* ((e % 8) + 8) % 8 is always a valid index, even for negative e *)
    let ix = gen_int_expr g in
    Buffer.add_string buf
      (Printf.sprintf "%sarr[((%s) %% 8 + 8) %% 8] = %s;\n" pad ix (gen_float_expr g))
  | _ when g.ints <> [] ->
    Buffer.add_string buf
      (Printf.sprintf "%s%s = %s + %s;\n" pad (pick g g.ints) (pick g g.ints) (gen_int_expr g))
  | _ -> Buffer.add_string buf (Printf.sprintf "%sprint_int(%s);\n" pad (gen_int_expr g))

let gen_program seed =
  let g = { rng = P.create seed; ints = []; floats = []; depth = 0 } in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "global float arr[8];\n";
  (* helper functions: exercise call marshaling, callee-saved registers and
     the inliner in the agreement property *)
  Buffer.add_string buf
    (Printf.sprintf
       "int helper_i(int a, int b) { int t = a * %d + b; if (t > %d) { t = t - b * 2; } return t; }\n"
       (1 + P.int g.rng 9) (P.int g.rng 50));
  Buffer.add_string buf
    (Printf.sprintf
       "float helper_f(float x, float y) { float t = x * %.2f + y; return t - x; }\n"
       (0.5 +. P.float g.rng));
  Buffer.add_string buf
    "float use_arr(float[] a, int k) { return a[((k) % 8 + 8) % 8] * 0.75; }\n";
  Buffer.add_string buf "int main() {\n";
  (* loop counters used by for statements; declared up front *)
  List.iter
    (fun indent ->
      List.iter
        (fun depth ->
          Buffer.add_string buf (Printf.sprintf "  int it%d_%d = 0;\n" indent depth))
        [ 0; 1 ])
    [ 2; 4; 6; 8; 10; 12; 14; 16; 18 ];
  let n_ints = 2 + P.int g.rng 3 in
  for i = 0 to n_ints - 1 do
    let v = Printf.sprintf "x%d" i in
    Buffer.add_string buf (Printf.sprintf "  int %s = %s;\n" v (gen_int_expr g));
    g.ints <- v :: g.ints
  done;
  let n_floats = 2 + P.int g.rng 2 in
  for i = 0 to n_floats - 1 do
    let v = Printf.sprintf "f%d" i in
    Buffer.add_string buf (Printf.sprintf "  float %s = %s;\n" v (gen_float_expr g));
    g.floats <- v :: g.floats
  done;
  let n_stmts = 4 + P.int g.rng 8 in
  for _ = 1 to n_stmts do
    gen_stmt g ~indent:2 ~loop_depth:0 buf
  done;
  (* observable footprint: all variables and the array *)
  List.iter (fun v -> Buffer.add_string buf (Printf.sprintf "  print_int(%s);\n" v)) g.ints;
  List.iter (fun v -> Buffer.add_string buf (Printf.sprintf "  print_float(%s);\n" v)) g.floats;
  Buffer.add_string buf "  int k;\n  for (k = 0; k < 8; k = k + 1) { print_float(arr[k]); }\n";
  Buffer.add_string buf "  return 0;\n}\n";
  Buffer.contents buf

(* --- the four-way agreement check --- *)

type obs = { out : string; code : int }

let interp_obs m =
  let r = In.run ~fuel:50_000_000 m in
  { out = r.In.output; code = r.In.exit_code }

let machine_obs m =
  let image = Refine_passes.Pipeline.compile m in
  let eng = E.create image in
  let r = E.run ~max_steps:100_000_000L eng in
  match r.E.status with
  | E.Exited c -> { out = r.E.output; code = c }
  | E.Trapped tr -> Alcotest.fail ("machine trapped: " ^ E.string_of_trap tr)
  | _ -> Alcotest.fail "machine did not finish"

let check_agreement ~what src =
  let obs = Alcotest.testable (fun fmt o -> Format.fprintf fmt "exit=%d out=%S" o.code o.out) ( = ) in
  let m0 = F.compile src in
  let o_i0 = interp_obs m0 in
  let m2 = F.compile src in
  Refine_passes.Pipeline.optimize ~verify:true Refine_passes.Pipeline.O2 m2;
  let o_i2 = interp_obs m2 in
  Alcotest.check obs (what ^ ": interp O0 = interp O2") o_i0 o_i2;
  let o_m0 = machine_obs (F.compile src) in
  Alcotest.check obs (what ^ ": interp O0 = machine O0") o_i0 o_m0;
  let m2b = F.compile src in
  Refine_passes.Pipeline.optimize Refine_passes.Pipeline.O2 m2b;
  let o_m2 = machine_obs m2b in
  Alcotest.check obs (what ^ ": interp O0 = machine O2") o_i0 o_m2

let test_random_programs () =
  for seed = 1 to 60 do
    let src = gen_program seed in
    try check_agreement ~what:(Printf.sprintf "seed %d" seed) src
    with
    | F.Compile_error msg ->
      Alcotest.fail (Printf.sprintf "seed %d failed to compile: %s\n%s" seed msg src)
    | In.Trap msg ->
      Alcotest.fail (Printf.sprintf "seed %d trapped: %s\n%s" seed msg src)
  done

(* the instrumented REFINE binary in profile mode also agrees (paper:
   "the FI binary ... is used unmodified during profiling") *)
let test_random_programs_refine_transparent () =
  for seed = 1 to 20 do
    let src = gen_program (1000 + seed) in
    let m = F.compile src in
    let o = interp_obs m in
    let p = Refine_core.Tool.prepare Refine_core.Tool.Refine src in
    Alcotest.(check string)
      (Printf.sprintf "seed %d refine-transparent" seed)
      o.out p.Refine_core.Tool.profile.Refine_core.Fault.golden_output
  done

let tests =
  [
    Alcotest.test_case "random programs: 4-way agreement" `Slow test_random_programs;
    Alcotest.test_case "random programs: REFINE transparency" `Slow
      test_random_programs_refine_transparent;
  ]
