(* Unit and property tests for the support library: PRNG, bit operations,
   parallel map and table rendering. *)

module P = Refine_support.Prng
module B = Refine_support.Bitops
module Par = Refine_support.Parallel
module Tbl = Refine_support.Table

let test_prng_deterministic () =
  let a = P.create 42 and b = P.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (P.next_int64 a) (P.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = P.create 42 and b = P.create 43 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if P.next_int64 a = P.next_int64 b then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 4)

let test_prng_copy () =
  let a = P.create 7 in
  ignore (P.next_int64 a);
  let b = P.copy a in
  Alcotest.(check int64) "copy continues identically" (P.next_int64 a) (P.next_int64 b)

let test_prng_split_independent () =
  let a = P.create 7 in
  let b = P.split a in
  let c = P.split a in
  (* splits must not replay each other's stream *)
  let vb = List.init 32 (fun _ -> P.next_int64 b) in
  let vc = List.init 32 (fun _ -> P.next_int64 c) in
  Alcotest.(check bool) "split streams differ" true (vb <> vc)

let test_prng_int_bounds () =
  let r = P.create 1 in
  for _ = 1 to 2000 do
    let v = P.int r 17 in
    Alcotest.(check bool) "in bounds" true (v >= 0 && v < 17)
  done

let test_prng_int_uniformish () =
  let r = P.create 99 in
  let buckets = Array.make 8 0 in
  let n = 16000 in
  for _ = 1 to n do
    let v = P.int r 8 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d near uniform (%d)" i c)
        true
        (abs (c - (n / 8)) < n / 16))
    buckets

let test_prng_float_range () =
  let r = P.create 5 in
  for _ = 1 to 1000 do
    let f = P.float r in
    Alcotest.(check bool) "[0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_prng_int_invalid () =
  let r = P.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound <= 0") (fun () ->
      ignore (P.int r 0))

let test_flip_bit () =
  Alcotest.(check int64) "flip bit 0" 1L (B.flip_bit 0L 0);
  Alcotest.(check int64) "flip bit 63" Int64.min_int (B.flip_bit 0L 63);
  Alcotest.(check int64) "flip set bit clears" 0L (B.flip_bit 4L 2)

let test_bit_ops () =
  Alcotest.(check bool) "test set" true (B.test_bit 8L 3);
  Alcotest.(check bool) "test clear" false (B.test_bit 8L 2);
  Alcotest.(check int64) "set" 9L (B.set_bit 8L 0);
  Alcotest.(check int64) "clear" 0L (B.clear_bit 8L 3);
  Alcotest.(check int) "popcount" 3 (B.popcount 0b10101L);
  Alcotest.(check int) "popcount -1" 64 (B.popcount (-1L))

let test_bit_index_checked () =
  Alcotest.check_raises "index 64"
    (Invalid_argument "Bitops: bit index 64 out of [0,63]")
    (fun () -> ignore (B.flip_bit 0L 64))

let test_float_bits_roundtrip () =
  List.iter
    (fun f ->
      Alcotest.(check (float 0.0)) "roundtrip" f (B.bits_float (B.float_bits f)))
    [ 0.0; 1.0; -1.5; 3.14159; 1e300; -1e-300 ]

let test_parallel_map () =
  let arr = Array.init 1000 (fun i -> i) in
  let out = Par.map_array ~domains:4 (fun x -> x * x) arr in
  Array.iteri (fun i v -> Alcotest.(check int) "square in order" (i * i) v) out

let test_parallel_empty () =
  Alcotest.(check int) "empty" 0 (Array.length (Par.map_array (fun x -> x) [||]))

let test_parallel_single_domain () =
  let out = Par.init ~domains:1 10 (fun i -> i + 1) in
  Alcotest.(check int) "last" 10 out.(9)

let test_parallel_exception () =
  Alcotest.(check bool) "worker exception propagates" true
    (try
       ignore (Par.map_array ~domains:2 (fun x -> if x = 5 then failwith "boom" else x)
                 (Array.init 10 (fun i -> i)));
       false
     with _ -> true)

let test_table_render () =
  let s =
    Tbl.render
      ~align:[ Tbl.Left; Tbl.Right ]
      ~header:[ "name"; "value" ]
      [ [ "a"; "1" ]; [ "long-name"; "22" ] ]
  in
  Alcotest.(check bool) "has rule" true (String.length s > 0 && String.contains s '-');
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "4 lines" 4 (List.length lines);
  (* col0 width 9 ("long-name"), col1 width 5 ("value"): "a" + 8 pad +
     2 sep + 4 pad + "1" *)
  Alcotest.(check bool) "right aligned value" true
    (List.exists (fun l -> l = "a" ^ String.make 14 ' ' ^ "1") lines)

let test_table_pads_short_rows () =
  let s = Tbl.render ~header:[ "a"; "b"; "c" ] [ [ "x" ] ] in
  Alcotest.(check bool) "renders" true (String.length s > 0)

(* properties *)
let prop_flip_involution =
  QCheck.Test.make ~name:"flip_bit is an involution" ~count:500
    QCheck.(pair int64 (int_bound 63))
    (fun (v, i) -> B.flip_bit (B.flip_bit v i) i = v)

let prop_flip_changes_popcount =
  QCheck.Test.make ~name:"flip_bit changes popcount by one" ~count:500
    QCheck.(pair int64 (int_bound 63))
    (fun (v, i) -> abs (B.popcount (B.flip_bit v i) - B.popcount v) = 1)

let prop_int64_bound =
  QCheck.Test.make ~name:"Prng.int64 respects bound" ~count:300
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let r = P.create seed in
      let v = P.int64 r (Int64.of_int bound) in
      Int64.compare v 0L >= 0 && Int64.compare v (Int64.of_int bound) < 0)

(* ---- Supervisor.backoff: the worker-restart schedule ------------------- *)

module Sup = Refine_support.Supervisor

let test_backoff_deterministic () =
  for attempt = 0 to 10 do
    Alcotest.(check (float 0.0))
      "same (seed, attempt) same delay"
      (Sup.backoff ~seed:7 attempt)
      (Sup.backoff ~seed:7 attempt)
  done

let test_backoff_schedule_bounds () =
  let base = 0.05 and cap = 2.0 in
  for attempt = 0 to 40 do
    let d = Sup.backoff ~base ~cap ~seed:3 attempt in
    let floor_ = Float.min cap (base /. 2.0 *. (2.0 ** float_of_int (min attempt 32))) in
    Alcotest.(check bool)
      (Printf.sprintf "attempt %d in [%g, %g] (got %g)" attempt floor_ cap d)
      true
      (d >= floor_ && d <= cap)
  done;
  (* deep attempts saturate at exactly the cap *)
  Alcotest.(check (float 0.0)) "saturates at cap" cap (Sup.backoff ~base ~cap ~seed:3 40)

let test_backoff_seed_jitter () =
  (* sibling workers must not restart in lockstep: across seeds the early
     (uncapped) delays differ somewhere *)
  let differs =
    List.exists
      (fun a -> Sup.backoff ~seed:1 a <> Sup.backoff ~seed:2 a)
      [ 0; 1; 2; 3; 4 ]
  in
  Alcotest.(check bool) "different seeds de-synchronize" true differs

let test_backoff_invalid () =
  Alcotest.check_raises "base <= 0" (Invalid_argument "Supervisor.backoff") (fun () ->
      ignore (Sup.backoff ~base:0.0 ~seed:1 0));
  Alcotest.check_raises "cap < base" (Invalid_argument "Supervisor.backoff") (fun () ->
      ignore (Sup.backoff ~base:1.0 ~cap:0.5 ~seed:1 0))

let tests =
  [
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "backoff deterministic" `Quick test_backoff_deterministic;
    Alcotest.test_case "backoff schedule bounds" `Quick test_backoff_schedule_bounds;
    Alcotest.test_case "backoff seed jitter" `Quick test_backoff_seed_jitter;
    Alcotest.test_case "backoff invalid args" `Quick test_backoff_invalid;
    Alcotest.test_case "prng seed sensitivity" `Quick test_prng_seed_sensitivity;
    Alcotest.test_case "prng copy" `Quick test_prng_copy;
    Alcotest.test_case "prng split independent" `Quick test_prng_split_independent;
    Alcotest.test_case "prng int bounds" `Quick test_prng_int_bounds;
    Alcotest.test_case "prng int uniform-ish" `Quick test_prng_int_uniformish;
    Alcotest.test_case "prng float range" `Quick test_prng_float_range;
    Alcotest.test_case "prng invalid bound" `Quick test_prng_int_invalid;
    Alcotest.test_case "flip_bit" `Quick test_flip_bit;
    Alcotest.test_case "bit ops" `Quick test_bit_ops;
    Alcotest.test_case "bit index checked" `Quick test_bit_index_checked;
    Alcotest.test_case "float bits roundtrip" `Quick test_float_bits_roundtrip;
    Alcotest.test_case "parallel map order" `Quick test_parallel_map;
    Alcotest.test_case "parallel empty" `Quick test_parallel_empty;
    Alcotest.test_case "parallel single domain" `Quick test_parallel_single_domain;
    Alcotest.test_case "parallel exception" `Quick test_parallel_exception;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table pads short rows" `Quick test_table_pads_short_rows;
    QCheck_alcotest.to_alcotest prop_flip_involution;
    QCheck_alcotest.to_alcotest prop_flip_changes_popcount;
    QCheck_alcotest.to_alcotest prop_int64_bound;
  ]
