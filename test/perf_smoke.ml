(* Fast-path smoke: exercised on every `dune runtest` via the @perf-smoke
   alias so the snapshot/reset engine path and its bit-identity guarantee
   are covered by CI, not just by the (slower) property suite.

   Runs the same small REFINE cell with the legacy allocate-per-sample
   path and the snapshot-reset fast path, requires the outcome tables to
   match exactly, and prints the measured throughputs.  No timing
   assertions — speed numbers are informational; only equality fails the
   run. *)

module T = Refine_core.Tool
module E = Refine_campaign.Experiment
module Ex = Refine_machine.Exec

let src =
  "global float acc[4]; int main() { int i; float x = 1.5; int s = 0; for (i = 0; i < 50; i = \
   i + 1) { x = x * 1.01 + 0.1; s = s + i; acc[i % 4] = x; } print_int(s); print_float(x); \
   return 0; }"

let summary (c : E.cell) =
  Printf.sprintf "crash=%d soc=%d benign=%d err=%d cost=%Ld" c.E.counts.E.crash c.E.counts.E.soc
    c.E.counts.E.benign c.E.counts.E.tool_error c.E.injection_cost

let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (Unix.gettimeofday () -. t0, v)

let () =
  let samples = 80 in
  let run () = E.run_cell ~domains:2 ~samples ~seed:20170712 T.Refine ~program:"smoke" ~source:src () in
  T.use_fast_path := false;
  let legacy_s, legacy = timed run in
  T.use_fast_path := true;
  let fast_s, fast = timed run in
  let legacy_sum = summary legacy and fast_sum = summary fast in
  Printf.printf "perf-smoke: legacy %.1f samples/s, fast %.1f samples/s\n"
    (float_of_int samples /. legacy_s)
    (float_of_int samples /. fast_s);
  if legacy_sum <> fast_sum then begin
    Printf.printf "perf-smoke FAILED: outcome tables differ\n  legacy: %s\n  fast:   %s\n"
      legacy_sum fast_sum;
    exit 1
  end;
  (* engine-level identity on the prepared binary, clean run: the REFINE
     image calls the control library, so each engine gets fresh handlers *)
  let p = T.prepare T.Refine src in
  let handlers () =
    Refine_core.Runtime.refine_handlers (Refine_core.Runtime.create Refine_core.Runtime.Profile)
  in
  let fresh = Ex.run (Ex.create ~ext_extra:(handlers ()) p.T.image) in
  let eng = Ex.create_from_snapshot ~ext_extra:(handlers ()) p.T.snap in
  ignore (Ex.run eng);
  Ex.reset ~ext_extra:(handlers ()) eng;
  let reset = Ex.run eng in
  if fresh <> reset then begin
    Printf.printf "perf-smoke FAILED: reset engine diverges from fresh create\n";
    exit 1
  end;
  Printf.printf "perf-smoke OK: outcome table bit-identical (%s)\n" fast_sum
