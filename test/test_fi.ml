(* Fault-injection framework tests: selection flags, the REFINE backend
   pass, the LLFI IR pass, PINFI, outcome classification and tool-level
   invariants (profiling transparency, population agreement, determinism). *)

module T = Refine_core.Tool
module F = Refine_core.Fault
module Sel = Refine_passes.Selection
module M = Refine_mir.Minstr
module R = Refine_mir.Reg
module I = Refine_ir.Ir
module P = Refine_support.Prng
module E = Refine_machine.Exec

let src =
  {|
global float acc;
float work(float[] a, int m) {
  float s = 0.0;
  int i;
  for (i = 0; i < m; i = i + 1) { s = s + a[i] * a[i] + 0.5; }
  return s;
}
int main() {
  int i;
  float[] h = alloc_float(32);
  for (i = 0; i < 32; i = i + 1) { h[i] = tofloat(i % 7) * 0.25; }
  acc = work(h, 32);
  print_float(acc);
  print_int(toint(acc));
  return 0;
}
|}

(* ---- selection ---- *)

let test_selection_classes () =
  let mk c = Sel.{ funcs = [ "*" ]; instrs = c } in
  let add = M.Mbin (I.Add, R.gpr 1, R.gpr 1, M.Imm 1L) in
  let push = M.Mpush (R.gpr 1) in
  let load = M.Mload (R.gpr 1, R.gpr 2, 0) in
  let store = M.Mstore (R.gpr 1, R.gpr 2, 0) in
  Alcotest.(check bool) "all/add" true (Sel.minstr_selected (mk Sel.All) add);
  Alcotest.(check bool) "all/store (no outputs)" false (Sel.minstr_selected (mk Sel.All) store);
  Alcotest.(check bool) "stack/push" true (Sel.minstr_selected (mk Sel.Stack) push);
  Alcotest.(check bool) "stack/add" false (Sel.minstr_selected (mk Sel.Stack) add);
  Alcotest.(check bool) "arith/add" true (Sel.minstr_selected (mk Sel.Arith) add);
  Alcotest.(check bool) "mem/load" true (Sel.minstr_selected (mk Sel.Mem) load);
  Alcotest.(check bool) "mem/add" false (Sel.minstr_selected (mk Sel.Mem) add)

let test_selection_funcs () =
  let s = Sel.{ funcs = [ "work" ]; instrs = Sel.All } in
  Alcotest.(check bool) "selected" true (Sel.func_selected s "work");
  Alcotest.(check bool) "not selected" false (Sel.func_selected s "main");
  Alcotest.(check bool) "wildcard" true (Sel.func_selected Sel.default "anything")

let test_selection_ir_no_stack () =
  (* the IR has no stack instructions: the structural gap of Table 1 *)
  let s = Sel.{ funcs = [ "*" ]; instrs = Sel.Stack } in
  let add = I.Ibinop (0, I.Add, I.ICst 1L, I.ICst 2L) in
  let alloca = I.Alloca (1, 8) in
  Alcotest.(check bool) "no IR stack targets" false (Sel.ir_instr_selected s add);
  Alcotest.(check bool) "alloca never a target" false
    (Sel.ir_instr_selected Sel.default alloca)

let test_selection_strings () =
  Alcotest.(check string) "all" "all" (Sel.string_of_instr_class Sel.All);
  Alcotest.(check bool) "roundtrip" true
    (List.for_all
       (fun c -> Sel.instr_class_of_string (Sel.string_of_instr_class c) = c)
       [ Sel.All; Sel.Stack; Sel.Arith; Sel.Mem ])

(* ---- classification ---- *)

let profile : F.profile =
  { F.golden_output = "ok\n"; golden_exit = 0; dyn_count = 100L; profile_cost = 1000L }

let res status output = { E.status; output; steps = 0L; cost = 0L; truncated = false; detached = false; drain_steps = 0 }

let test_classify () =
  Alcotest.(check bool) "benign" true
    (F.classify profile (res (E.Exited 0) "ok\n") = F.Benign);
  Alcotest.(check bool) "soc" true
    (F.classify profile (res (E.Exited 0) "corrupted\n") = F.Soc);
  Alcotest.(check bool) "crash on exit code" true
    (F.classify profile (res (E.Exited 1) "ok\n") = F.Crash);
  Alcotest.(check bool) "crash on trap" true
    (F.classify profile (res (E.Trapped E.Div_by_zero) "ok\n") = F.Crash);
  Alcotest.(check bool) "crash on timeout" true
    (F.classify profile (res E.Timed_out "ok\n") = F.Crash)

(* ---- profiling transparency: the FI binary reproduces the golden run ---- *)

let test_profile_transparency () =
  let clean = T.prepare T.Pinfi src in
  List.iter
    (fun kind ->
      let p = T.prepare kind src in
      Alcotest.(check string)
        (T.kind_name kind ^ " profiling output = native output")
        clean.T.profile.F.golden_output p.T.profile.F.golden_output)
    [ T.Refine; T.Llfi ]

let test_population_refine_vs_pinfi () =
  (* same dynamic population modulo ret instructions, which REFINE cannot
     instrument (paper §4.2.3: it splices blocks *after* the instruction) *)
  let refine = T.prepare T.Refine src in
  let pinfi = T.prepare T.Pinfi src in
  let diff = Int64.sub pinfi.T.profile.F.dyn_count refine.T.profile.F.dyn_count in
  Alcotest.(check bool) "PINFI sees slightly more (rets)" true
    (Int64.compare diff 0L >= 0);
  Alcotest.(check bool) "difference is tiny" true (Int64.compare diff 50L < 0)

let test_population_llfi_smaller () =
  (* IR-level FI sees far fewer dynamic targets: no prologue/epilogue,
     spills, flag writes, address materialization *)
  let llfi = T.prepare T.Llfi src in
  let pinfi = T.prepare T.Pinfi src in
  Alcotest.(check bool) "LLFI population smaller" true
    (Int64.compare llfi.T.profile.F.dyn_count pinfi.T.profile.F.dyn_count < 0)

let test_refine_static_counts () =
  let refine = T.prepare T.Refine src in
  let llfi = T.prepare T.Llfi src in
  Alcotest.(check bool) "refine instrumented sites > 0" true (refine.T.static_instrumented > 0);
  Alcotest.(check bool) "llfi instrumented sites > 0" true (llfi.T.static_instrumented > 0);
  Alcotest.(check bool) "refine instruments more sites than llfi" true
    (refine.T.static_instrumented > llfi.T.static_instrumented)

(* ---- injection determinism and fault records ---- *)

let test_injection_deterministic () =
  List.iter
    (fun kind ->
      let p = T.prepare kind src in
      let run seed = T.run_injection p (P.create seed) in
      let a = run 11 and b = run 11 in
      Alcotest.(check bool)
        (T.kind_name kind ^ " same seed, same outcome")
        true
        (a.F.outcome = b.F.outcome && a.F.fault = b.F.fault && a.F.run_cost = b.F.run_cost))
    [ T.Refine; T.Llfi; T.Pinfi ]

let test_injection_fires () =
  List.iter
    (fun kind ->
      let p = T.prepare kind src in
      let fired = ref 0 in
      for seed = 1 to 30 do
        match (T.run_injection p (P.create seed)).F.fault with
        | Some r ->
          incr fired;
          Alcotest.(check bool) "bit in range" true (r.F.bit >= 0 && r.F.bit < 64);
          Alcotest.(check bool) "dyn index positive" true (Int64.compare r.F.dyn_index 0L > 0)
        | None -> ()
      done;
      Alcotest.(check bool)
        (T.kind_name kind ^ " most injections fire")
        true (!fired >= 28))
    [ T.Refine; T.Llfi; T.Pinfi ]

let test_outcomes_vary () =
  (* over enough injections every tool should see at least benign plus a
     non-benign outcome on this program *)
  List.iter
    (fun kind ->
      let p = T.prepare kind src in
      let seen = Hashtbl.create 4 in
      for seed = 1 to 60 do
        Hashtbl.replace seen (T.run_injection p (P.create seed)).F.outcome ()
      done;
      Alcotest.(check bool)
        (T.kind_name kind ^ " sees multiple outcome kinds")
        true
        (Hashtbl.length seen >= 2))
    [ T.Refine; T.Llfi; T.Pinfi ]

(* ---- REFINE pass structure ---- *)

let build_mir source =
  let m = Refine_minic.Frontend.compile source in
  Refine_passes.Pipeline.optimize Refine_passes.Pipeline.O2 m;
  (m, Refine_passes.Pipeline.to_mir m)

let test_refine_pass_adds_blocks () =
  let _, funcs = build_mir src in
  let before =
    List.fold_left (fun acc (mf : Refine_mir.Mfunc.t) -> acc + List.length mf.Refine_mir.Mfunc.blocks) 0 funcs
  in
  let n = List.fold_left (fun acc mf -> acc + Refine_passes.Refine_pass.run mf) 0 funcs in
  let after =
    List.fold_left (fun acc (mf : Refine_mir.Mfunc.t) -> acc + List.length mf.Refine_mir.Mfunc.blocks) 0 funcs
  in
  Alcotest.(check bool) "instrumented sites" true (n > 0);
  (* each site adds >= 4 blocks (SetupFI, FI_k..., FIdone, PostFI) *)
  Alcotest.(check bool) "blocks spliced" true (after - before >= 4 * n)

let test_refine_pass_calls_library () =
  let _, funcs = build_mir src in
  List.iter (fun mf -> ignore (Refine_passes.Refine_pass.run mf)) funcs;
  let calls = ref 0 in
  List.iter
    (fun (mf : Refine_mir.Mfunc.t) ->
      List.iter
        (fun (b : Refine_mir.Mfunc.mblock) ->
          List.iter
            (function
              | M.Mcallext "fi_sel_instr" | M.Mcallext "fi_setup_fi" -> incr calls
              | _ -> ())
            b.Refine_mir.Mfunc.code)
        mf.Refine_mir.Mfunc.blocks)
    funcs;
  Alcotest.(check bool) "selInstr/setupFI calls emitted" true (!calls > 0)

let test_refine_pass_respects_selection () =
  let _, funcs = build_mir src in
  let sel = Sel.{ funcs = [ "work" ]; instrs = Sel.All } in
  List.iter
    (fun (mf : Refine_mir.Mfunc.t) ->
      let n = Refine_passes.Refine_pass.run ~sel mf in
      if mf.Refine_mir.Mfunc.mname = "work" then
        Alcotest.(check bool) "work instrumented" true (n > 0)
      else Alcotest.(check int) (mf.Refine_mir.Mfunc.mname ^ " untouched") 0 n)
    funcs

(* ---- LLFI pass structure ---- *)

let test_llfi_pass_valid_ir () =
  let m = Refine_minic.Frontend.compile src in
  Refine_passes.Pipeline.optimize Refine_passes.Pipeline.O2 m;
  let n = Refine_passes.Llfi_pass.run m in
  Alcotest.(check bool) "instrumented" true (n > 0);
  Refine_ir.Verify.check_module m

let test_llfi_pass_rewrites_uses () =
  let m =
    Refine_minic.Frontend.compile
      "global int a = 3; int main() { print_int(a * a); return 0; }"
  in
  Refine_passes.Pipeline.optimize Refine_passes.Pipeline.O2 m;
  ignore (Refine_passes.Llfi_pass.run m);
  Refine_ir.Verify.check_module m;
  (* semantics preserved when the runtime passes values through *)
  let image = Refine_passes.Pipeline.compile m in
  let ctrl = Refine_core.Runtime.create Refine_core.Runtime.Profile in
  let eng = E.create ~ext_extra:(Refine_core.Runtime.llfi_handlers ctrl) image in
  let r = E.run eng in
  Alcotest.(check string) "passthrough output" "9\n" r.E.output;
  Alcotest.(check bool) "counted" true (ctrl.Refine_core.Runtime.count > 0)

let test_llfi_forced_flip () =
  (* inject at a known target and verify the output actually changes or the
     run crashes: a flip of the printed value's source *)
  let p = T.prepare T.Llfi "global int a = 3; int main() { print_int(a * a); return 0; }" in
  Alcotest.(check bool) "tiny population" true (Int64.compare p.T.profile.F.dyn_count 10L < 0);
  let changed = ref 0 in
  for seed = 1 to 40 do
    let e = T.run_injection p (P.create seed) in
    if e.F.outcome <> F.Benign then incr changed
  done;
  (* flipping a bit of the only computed value almost always corrupts the
     printed output *)
  Alcotest.(check bool) "most flips visible" true (!changed > 25)

(* ---- ablation: PreFI must preserve FLAGS (paper Figure 2) ---- *)

let test_refine_flags_save_ablation () =
  (* with save_flags=false the instrumentation's own compare corrupts the
     application's branches, so even the *profiling* run diverges from the
     golden output — the negative control for REFINE's state saving *)
  let m = Refine_minic.Frontend.compile src in
  Refine_passes.Pipeline.optimize Refine_passes.Pipeline.O2 m;
  let funcs = Refine_passes.Pipeline.to_mir m in
  List.iter (fun mf -> ignore (Refine_passes.Refine_pass.run ~save_flags:false mf)) funcs;
  let image = Refine_passes.Pipeline.emit m funcs in
  let ctrl = Refine_core.Runtime.create Refine_core.Runtime.Profile in
  let eng = E.create ~ext_extra:(Refine_core.Runtime.refine_handlers ctrl) image in
  let r = E.run ~max_cost:100_000_000L eng in
  let golden = (T.prepare T.Pinfi src).T.profile.F.golden_output in
  let diverged =
    match r.E.status with
    | E.Exited 0 -> r.E.output <> golden
    | _ -> true (* crash/timeout is also divergence *)
  in
  Alcotest.(check bool) "omitting pushf/popf corrupts the program" true diverged

(* ---- per-class population consistency, REFINE vs PINFI ---- *)

let test_class_populations_consistent () =
  (* for each -fi-instrs class, REFINE and PINFI must count (nearly) the
     same dynamic population: same predicate over the same instruction
     stream, modulo rets (counted only by PINFI, and only under All) *)
  List.iter
    (fun cls ->
      let sel = Sel.{ funcs = [ "*" ]; instrs = cls } in
      let refine = T.prepare ~sel T.Refine src in
      let pinfi = T.prepare ~sel T.Pinfi src in
      let d =
        Int64.sub pinfi.T.profile.F.dyn_count refine.T.profile.F.dyn_count
      in
      Alcotest.(check bool)
        (Printf.sprintf "class %s: |PINFI - REFINE| small (%Ld)"
           (Sel.string_of_instr_class cls) d)
        true
        (Int64.compare d 0L >= 0 && Int64.compare d 50L < 0))
    [ Sel.All; Sel.Stack; Sel.Arith; Sel.Mem ]

(* ---- PINFI ---- *)

let test_pinfi_detach () =
  let p = T.prepare T.Pinfi src in
  (* a fired pinfi run must cost less than a fully attached one of the same
     dynamic length (the detach optimization) *)
  let attached_cost = p.T.profile.F.profile_cost in
  let e = T.run_injection p (P.create 3) in
  Alcotest.(check bool) "injection cheaper than profiling" true
    (Int64.compare e.F.run_cost attached_cost < 0)

let test_pinfi_profile_counts () =
  let p = T.prepare T.Pinfi src in
  Alcotest.(check bool) "population nonempty" true
    (Int64.compare p.T.profile.F.dyn_count 0L > 0)

(* ---- timeout classification end-to-end ---- *)

let test_timeout_classified_as_crash () =
  (* a flip of the loop counter can make the loop effectively endless; with
     enough seeds at least one run must hit the 10x timeout or crash; more
     importantly, no run may hang forever *)
  let p =
    T.prepare T.Pinfi
      {|
int main() {
  int i;
  int s = 0;
  for (i = 0; i < 2000; i = i + 1) { s = s + i; }
  print_int(s);
  return 0;
}
|}
  in
  for seed = 1 to 50 do
    ignore (T.run_injection p (P.create seed))
  done;
  Alcotest.(check pass) "no hang" () ()

let tests =
  [
    Alcotest.test_case "selection classes" `Quick test_selection_classes;
    Alcotest.test_case "selection functions" `Quick test_selection_funcs;
    Alcotest.test_case "IR has no stack targets" `Quick test_selection_ir_no_stack;
    Alcotest.test_case "selection strings" `Quick test_selection_strings;
    Alcotest.test_case "classification rules" `Quick test_classify;
    Alcotest.test_case "profiling transparency" `Quick test_profile_transparency;
    Alcotest.test_case "REFINE vs PINFI population" `Quick test_population_refine_vs_pinfi;
    Alcotest.test_case "LLFI population smaller" `Quick test_population_llfi_smaller;
    Alcotest.test_case "static instrumentation counts" `Quick test_refine_static_counts;
    Alcotest.test_case "injection deterministic" `Quick test_injection_deterministic;
    Alcotest.test_case "injection fires" `Quick test_injection_fires;
    Alcotest.test_case "outcomes vary" `Quick test_outcomes_vary;
    Alcotest.test_case "REFINE pass adds blocks" `Quick test_refine_pass_adds_blocks;
    Alcotest.test_case "REFINE pass calls library" `Quick test_refine_pass_calls_library;
    Alcotest.test_case "REFINE pass selection" `Quick test_refine_pass_respects_selection;
    Alcotest.test_case "LLFI pass valid IR" `Quick test_llfi_pass_valid_ir;
    Alcotest.test_case "LLFI pass passthrough" `Quick test_llfi_pass_rewrites_uses;
    Alcotest.test_case "LLFI forced flip visible" `Quick test_llfi_forced_flip;
    Alcotest.test_case "ablation: flags save required" `Quick test_refine_flags_save_ablation;
    Alcotest.test_case "per-class population consistency" `Quick test_class_populations_consistent;
    Alcotest.test_case "PINFI detach saves cost" `Quick test_pinfi_detach;
    Alcotest.test_case "PINFI profile counts" `Quick test_pinfi_profile_counts;
    Alcotest.test_case "timeouts terminate" `Quick test_timeout_classified_as_crash;
  ]
