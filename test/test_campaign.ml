(* Campaign-level tests: determinism, aggregation invariants and report
   rendering. *)

module E = Refine_campaign.Experiment
module Rep = Refine_campaign.Report
module T = Refine_core.Tool

let src =
  {|
int main() {
  int i; float s = 0.0;
  for (i = 0; i < 40; i = i + 1) { s = s + tofloat(i * i) * 0.125; }
  print_float(s);
  return 0;
}
|}

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let run_cell tool = E.run_cell ~samples:40 ~seed:5 tool ~program:"tiny" ~source:src ()

let test_counts_sum () =
  let c = run_cell T.Refine in
  Alcotest.(check int) "outcomes sum to samples" c.E.samples (E.total c.E.counts)

let test_determinism () =
  let a = run_cell T.Pinfi and b = run_cell T.Pinfi in
  Alcotest.(check bool) "same seed same counts" true (a.E.counts = b.E.counts);
  Alcotest.(check int64) "same cost" a.E.injection_cost b.E.injection_cost

let test_seed_changes_results () =
  let a = E.run_cell ~samples:60 ~seed:1 T.Pinfi ~program:"tiny" ~source:src () in
  let b = E.run_cell ~samples:60 ~seed:2 T.Pinfi ~program:"tiny" ~source:src () in
  (* not a hard guarantee, but with 60 samples identical tallies for
     different seeds would be suspicious across all three categories AND
     identical total cost *)
  Alcotest.(check bool) "different seeds differ somewhere" true
    (a.E.counts <> b.E.counts || a.E.injection_cost <> b.E.injection_cost)

let test_matrix_and_reports () =
  let cells = E.run_matrix ~samples:25 ~seed:9 [ ("tiny", src) ] Rep.tools in
  Alcotest.(check int) "3 cells" 3 (List.length cells);
  let fig4 = Rep.figure4_program cells "tiny" in
  Alcotest.(check bool) "figure4 mentions tools" true
    (contains fig4 "LLFI" && contains fig4 "REFINE" && contains fig4 "PINFI");
  let rows = Rep.chi2_rows cells [ "tiny" ] in
  Alcotest.(check int) "one chi2 row" 1 (List.length rows);
  let t5 = Rep.table5 rows in
  Alcotest.(check bool) "table5 rendered" true (contains t5 "tiny");
  let a = E.find_cell cells ~program:"tiny" ~tool:T.Llfi in
  let b = E.find_cell cells ~program:"tiny" ~tool:T.Pinfi in
  let t4 = Rep.contingency_table a b in
  Alcotest.(check bool) "table4 has totals" true (contains t4 "Total")

let test_paper_data_complete () =
  let module PD = Refine_campaign.Paper_data in
  Alcotest.(check int) "table6 has 14 programs" 14 (List.length PD.table6);
  Alcotest.(check int) "figure5 has 14 programs" 14 (List.length PD.figure5);
  (* paper rows each sum to 1068 experiments *)
  List.iter
    (fun (name, (l, r, p)) ->
      List.iter
        (fun (row : PD.row) ->
          Alcotest.(check int)
            (name ^ " row sums to 1068")
            1068
            (row.PD.crash + row.PD.soc + row.PD.benign))
        [ l; r; p ])
    PD.table6

let test_pmf_bars () =
  let cells = E.run_matrix ~samples:20 ~seed:4 [ ("tiny", src) ] Rep.tools in
  let pmf = Rep.figure4_pmf cells "tiny" in
  let lines = String.split_on_char '\n' pmf |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "header + three bars" 4 (List.length lines);
  (* each bar is exactly 50 cells wide between the brackets *)
  List.iteri
    (fun i l ->
      if i > 0 then begin
        let open_b = String.index l '[' in
        let close_b = String.index l ']' in
        Alcotest.(check int) "bar width" 50 (close_b - open_b - 1)
      end)
    lines

(* a kill mid-append leaves at most one torn final line: the loader must
   drop it (never parse it), count it, and resume from the previous record *)
let test_torn_final_line () =
  let module J = Refine_campaign.Journal in
  let path = Filename.temp_file "refine_torn" ".journal" in
  let j = J.create path in
  let entry i =
    {
      J.program = "tiny";
      tool = "REFINE";
      model = "reg";
      sample = i;
      outcome = Refine_core.Fault.Benign;
      cost = Int64.of_int (100 + i);
      attempts = 1;
    }
  in
  List.iter (fun i -> J.record j (entry i)) [ 0; 1; 2 ];
  J.close j;
  (* simulate the torn write: a valid-looking record cut mid-line, no
     trailing newline *)
  let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
  output_string oc "tiny\tREFINE\t3\tben";
  close_out oc;
  let j2 = J.create ~resume:true path in
  Alcotest.(check int) "torn line counted" 1 (J.skipped j2);
  Alcotest.(check int) "prior records intact" 3 (J.length j2);
  let resolved = J.completed j2 ~program:"tiny" ~tool:"REFINE" in
  Alcotest.(check bool) "torn sample not resolved" false (Hashtbl.mem resolved 3);
  List.iter
    (fun i -> Alcotest.(check bool) (Printf.sprintf "sample %d resolved" i) true (Hashtbl.mem resolved i))
    [ 0; 1; 2 ];
  Sys.remove path

let test_parallel_matches_sequential () =
  let a = E.run_cell ~domains:1 ~samples:30 ~seed:3 T.Refine ~program:"tiny" ~source:src () in
  let b = E.run_cell ~domains:4 ~samples:30 ~seed:3 T.Refine ~program:"tiny" ~source:src () in
  Alcotest.(check bool) "domain count does not change results" true (a.E.counts = b.E.counts)

let tests =
  [
    Alcotest.test_case "counts sum" `Quick test_counts_sum;
    Alcotest.test_case "deterministic" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_results;
    Alcotest.test_case "matrix + reports" `Quick test_matrix_and_reports;
    Alcotest.test_case "paper data complete" `Quick test_paper_data_complete;
    Alcotest.test_case "PMF stacked bars" `Quick test_pmf_bars;
    Alcotest.test_case "torn final journal line" `Quick test_torn_final_line;
    Alcotest.test_case "parallel = sequential" `Quick test_parallel_matches_sequential;
  ]
