(* Backend tests: instruction selection structure, register allocation
   invariants, frame lowering, peephole and layout. *)

module I = Refine_ir.Ir
module M = Refine_mir.Minstr
module R = Refine_mir.Reg
module MF = Refine_mir.Mfunc
module BK = Refine_passes.Pipeline
module F = Refine_minic.Frontend

let compile_mir ?(opt = Refine_passes.Pipeline.O2) src =
  let m = F.compile src in
  Refine_passes.Pipeline.optimize opt m;
  let funcs = BK.to_mir m in
  (m, funcs)

let all_instrs (funcs : MF.t list) =
  List.concat_map (fun mf -> List.concat_map (fun (b : MF.mblock) -> b.MF.code) mf.MF.blocks) funcs

let simple_src =
  {|
float combine(float a, float b, float c) { return a * b + c / a; }
int main() {
  float x = combine(2.0, 3.0, 8.0);
  print_float(x);
  int i; int s = 0;
  for (i = 0; i < 10; i = i + 1) { s = s + i * i; }
  print_int(s);
  return 0;
}
|}

let test_no_virtual_registers_after_ra () =
  let _, funcs = compile_mir simple_src in
  List.iter
    (fun i ->
      List.iter
        (fun r ->
          Alcotest.(check bool) ("physical: " ^ Refine_mir.Mprinter.to_string i) true
            (R.is_physical r))
        (M.inputs i @ M.outputs i))
    (all_instrs funcs)

let test_prologue_epilogue_present () =
  let _, funcs = compile_mir simple_src in
  List.iter
    (fun (mf : MF.t) ->
      let entry_code = (List.hd mf.MF.blocks).MF.code in
      (* prologue: ... push rbp; mov rbp, rsp ... *)
      let rec has_pair = function
        | M.Mpush r :: M.Mmov (d, M.Reg s) :: _ when r = R.rbp && d = R.rbp && s = R.rsp -> true
        | _ :: rest -> has_pair rest
        | [] -> false
      in
      Alcotest.(check bool) (mf.MF.mname ^ " has prologue") true (has_pair entry_code);
      (* every ret is preceded by the epilogue's pop rbp *)
      List.iter
        (fun (b : MF.mblock) ->
          let rec check = function
            | M.Mpop r :: rest when r = R.rbp ->
              (* after pop rbp only callee-saved pops may precede ret *)
              let rec only_pops = function
                | M.Mpop _ :: rest -> only_pops rest
                | [ M.Mret ] -> true
                | _ -> false
              in
              Alcotest.(check bool) "epilogue shape" true (only_pops rest);
              check rest
            | _ :: rest -> check rest
            | [] -> ()
          in
          check b.MF.code)
        mf.MF.blocks)
    funcs

let test_cmp_jcc_fusion () =
  (* a single-use compare consumed by the branch must not produce setcc *)
  let _, funcs =
    compile_mir "int main() { int i = 0; while (i < 5) { i = i + 1; } print_int(i); return 0; }"
  in
  let setccs = List.filter (function M.Msetcc _ -> true | _ -> false) (all_instrs funcs) in
  Alcotest.(check int) "no setcc" 0 (List.length setccs);
  let jccs = List.filter (function M.Mjcc _ -> true | _ -> false) (all_instrs funcs) in
  Alcotest.(check bool) "has conditional jumps" true (jccs <> [])

let test_gep_folding () =
  (* a single-use gep with a dynamic index feeding a load/store becomes an
     indexed access, no Mlea *)
  let _, funcs =
    compile_mir
      "global int a[8]; int main() { int i; int s = 0; for (i = 0; i < 8; i = i + 1) { a[i] = i * 2; } for (i = 0; i < 8; i = i + 1) { s = s + a[i]; } print_int(s); return 0; }"
  in
  let leas = List.filter (function M.Mlea _ -> true | _ -> false) (all_instrs funcs) in
  let idx =
    List.filter (function M.Mloadidx _ | M.Mstoreidx _ -> true | _ -> false) (all_instrs funcs)
  in
  Alcotest.(check bool) "uses indexed addressing" true (idx <> []);
  Alcotest.(check int) "no lea needed" 0 (List.length leas)

let test_calls_marshal_args () =
  (* O1: no inlining, the call is preserved *)
  let _, funcs = compile_mir ~opt:Refine_passes.Pipeline.O1 simple_src in
  (* combine takes 3 float args: the call must be preceded by moves into
     f1, f2, f3 *)
  let found = ref false in
  List.iter
    (fun (mf : MF.t) ->
      List.iter
        (fun (b : MF.mblock) ->
          let rec scan = function
            | M.Mmov (d1, _) :: M.Mmov (d2, _) :: M.Mmov (d3, _) :: M.Mcall "combine" :: _
              when d1 = R.fpr 1 && d2 = R.fpr 2 && d3 = R.fpr 3 -> found := true
            | _ :: rest -> scan rest
            | [] -> ()
          in
          scan b.MF.code)
        mf.MF.blocks)
    funcs;
  Alcotest.(check bool) "ABI marshaling movs" true !found

let test_spilling_under_pressure () =
  (* more than 11 simultaneously live integer values forces spills *)
  let vars = List.init 20 (fun i -> Printf.sprintf "v%02d" i) in
  let decls =
    String.concat "" (List.mapi (fun i v -> Printf.sprintf "int %s = %d * n;\n" v (i + 1)) vars)
  in
  let uses = String.concat " + " vars in
  let src =
    Printf.sprintf "global int n = 3;\nint main() {\n%sprint_int(%s);\nreturn 0;\n}" decls uses
  in
  let m, funcs = compile_mir src in
  let spills =
    List.exists
      (function
        | M.Mstore (_, b, off) when b = R.rbp && off < 0 -> true
        | _ -> false)
      (all_instrs funcs)
  in
  Alcotest.(check bool) "spill stores exist" true spills;
  (* and the program still computes the right value *)
  let image = BK.emit m funcs in
  let eng = Refine_machine.Exec.create image in
  let r = Refine_machine.Exec.run eng in
  (* sum of i*3 for i in 1..20 = 630 *)
  Alcotest.(check string) "value with spills" "630\n" r.Refine_machine.Exec.output

let test_callee_saved_across_calls () =
  (* a value live across a call must survive the callee clobbering
     caller-saved registers *)
  let src =
    {|
int id(int x) { return x; }
int main() {
  int a = 41;
  int b = id(1);
  print_int(a + b);
  return 0;
}
|}
  in
  let m, funcs = compile_mir src in
  let image = BK.emit m funcs in
  let eng = Refine_machine.Exec.create image in
  let r = Refine_machine.Exec.run eng in
  Alcotest.(check string) "42" "42\n" r.Refine_machine.Exec.output

let test_peephole_removes_self_moves () =
  let _, funcs = compile_mir simple_src in
  List.iter
    (fun i ->
      match i with
      | M.Mmov (d, M.Reg s) ->
        Alcotest.(check bool) "no self move" false (d = s)
      | _ -> ())
    (all_instrs funcs)

let test_layout_resolves () =
  let m, funcs = compile_mir simple_src in
  let image = BK.emit m funcs in
  let module L = Refine_backend.Layout in
  Array.iter
    (fun i ->
      match i with
      | M.Mcall name -> Alcotest.fail ("unresolved call " ^ name)
      | M.Mjmp t | M.Mjcc (_, t) ->
        Alcotest.(check bool) "target in range" true (t >= 0 && t < Array.length image.L.code)
      | M.Mcalli t ->
        Alcotest.(check bool) "call target in range" true (t >= 0 && t < Array.length image.L.code)
      | _ -> ())
    image.L.code;
  Alcotest.(check bool) "entry is main" true
    (image.L.func_of_pc.(image.L.entry) = "main")

let test_layout_missing_main () =
  let m = F.compile "int main() { return 0; }" in
  let funcs = BK.to_mir m in
  let renamed = List.map (fun (mf : MF.t) -> { mf with MF.mname = "notmain" }) funcs in
  Alcotest.(check bool) "layout requires main" true
    (try
       ignore (Refine_backend.Layout.build ~globals:[] renamed);
       false
     with Refine_backend.Layout.Layout_error _ -> true)

let test_split_critical_edges () =
  let b, _ = Refine_ir.Builder.create ~name:"main" ~params:[] ~ret:(Some I.I64) in
  let module B = Refine_ir.Builder in
  (* cbr from entry to a join that has two predecessors: critical edge *)
  let l1 = B.block b and join = B.block b in
  B.terminate b (I.Cbr (I.ICst 1L, l1, join));
  B.switch_to b l1;
  B.terminate b (I.Br join);
  B.switch_to b join;
  B.terminate b (I.Ret (Some (I.ICst 0L)));
  let fn = B.func b in
  Refine_backend.Splitcrit.run fn;
  let cfg = Refine_ir.Cfg.build fn in
  (* no block with multiple successors may have a successor with multiple
     predecessors *)
  List.iter
    (fun (blk : I.block) ->
      let succs = I.term_succs blk.I.term in
      if List.length succs > 1 then
        List.iter
          (fun s ->
            Alcotest.(check bool) "edge not critical" true
              (List.length (Refine_ir.Cfg.predecessors cfg s) <= 1))
          succs)
    fn.I.blocks

let test_mverify_accepts_backend_output () =
  let _, funcs = compile_mir simple_src in
  Refine_mir.Mverify.check_funcs funcs;
  (* and the REFINE-instrumented version too *)
  let m2, funcs2 = compile_mir simple_src in
  ignore m2;
  List.iter (fun mf -> ignore (Refine_passes.Refine_pass.run mf)) funcs2;
  Refine_mir.Mverify.check_funcs funcs2

let test_mverify_rejects_bad () =
  let mf = Refine_mir.Mfunc.create "main" in
  let b = Refine_mir.Mfunc.add_block mf 0 in
  (* jump to a missing label *)
  b.Refine_mir.Mfunc.code <- [ M.Mjmp 42 ];
  Alcotest.(check bool) "missing label rejected" true
    (try Refine_mir.Mverify.check_func mf; false with Refine_mir.Mverify.Invalid _ -> true);
  (* leftover virtual register *)
  let mf2 = Refine_mir.Mfunc.create "main" in
  let b2 = Refine_mir.Mfunc.add_block mf2 0 in
  b2.Refine_mir.Mfunc.code <- [ M.Mmov (R.vreg_base + 3, M.Imm 0L); M.Mret ];
  Alcotest.(check bool) "virtual register rejected" true
    (try Refine_mir.Mverify.check_func mf2; false with Refine_mir.Mverify.Invalid _ -> true);
  (* falling off the end *)
  let mf3 = Refine_mir.Mfunc.create "main" in
  let b3 = Refine_mir.Mfunc.add_block mf3 0 in
  b3.Refine_mir.Mfunc.code <- [ M.Mmov (R.gpr 0, M.Imm 0L) ];
  Alcotest.(check bool) "fallthrough off function rejected" true
    (try Refine_mir.Mverify.check_func mf3; false with Refine_mir.Mverify.Invalid _ -> true)

let tests =
  [
    Alcotest.test_case "no vregs after RA" `Quick test_no_virtual_registers_after_ra;
    Alcotest.test_case "prologue/epilogue" `Quick test_prologue_epilogue_present;
    Alcotest.test_case "cmp/jcc fusion" `Quick test_cmp_jcc_fusion;
    Alcotest.test_case "gep folding" `Quick test_gep_folding;
    Alcotest.test_case "call marshaling" `Quick test_calls_marshal_args;
    Alcotest.test_case "spilling under pressure" `Quick test_spilling_under_pressure;
    Alcotest.test_case "callee-saved across calls" `Quick test_callee_saved_across_calls;
    Alcotest.test_case "peephole self-moves" `Quick test_peephole_removes_self_moves;
    Alcotest.test_case "layout resolves labels" `Quick test_layout_resolves;
    Alcotest.test_case "layout requires main" `Quick test_layout_missing_main;
    Alcotest.test_case "critical edge splitting" `Quick test_split_critical_edges;
    Alcotest.test_case "mverify accepts backend output" `Quick test_mverify_accepts_backend_output;
    Alcotest.test_case "mverify rejects bad code" `Quick test_mverify_rejects_bad;
  ]
