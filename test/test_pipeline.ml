(* Unified pipeline manager + content-addressed artifact cache (DESIGN.md
   §15): spec parse/print round-trips (qcheck), interleaved verification
   catching a chaos-corrupted MIR pipeline, fixed-seed campaign equality
   with the cache on / off / per-pass verification, IR-tier compile
   sharing across tools, and the mutated-image-is-never-served
   regression. *)

module Pl = Refine_passes.Pipeline
module Pass = Refine_passes.Pass
module AC = Refine_passes.Artifact_cache
module T = Refine_core.Tool
module Ex = Refine_campaign.Experiment
module M = Refine_mir.Minstr
module R = Refine_mir.Reg

let prog_a =
  {|
int main() {
  int i;
  int acc = 0;
  for (i = 0; i < 40; i = i + 1) { acc = acc + i * 3 - (i / 2); }
  print_int(acc);
  return 0;
}
|}

let prog_b =
  {|
float poly(float x) { return x * x * 0.5 + x * 3.0 - 1.25; }
int main() {
  int i;
  float s = 0.0;
  for (i = 0; i < 24; i = i + 1) { s = s + poly(tofloat(i) * 0.25); }
  print_float(s);
  return 0;
}
|}

(* ---- parse/print round-trip ------------------------------------------- *)

let spec_testable = Alcotest.testable (fun fmt s -> Format.pp_print_string fmt (Pl.print s)) Pl.equal

let test_level_roundtrip () =
  List.iter
    (fun level ->
      let s = Pl.of_level level in
      Alcotest.check spec_testable
        ("-" ^ Pl.string_of_level level ^ " round-trips")
        s
        (Pl.parse (Pl.print s)))
    [ Pl.O0; Pl.O1; Pl.O2 ]

let test_parse_whitespace () =
  Alcotest.check spec_testable "whitespace and empty segments are tolerated"
    { Pl.ir = [ "mem2reg"; "dce" ]; isel = true; mir = [ "regalloc" ]; layout = false }
    (Pl.parse " mem2reg ,, dce , isel , regalloc ")

let test_parse_errors () =
  let rejects name s =
    match Pl.parse s with
    | exception Pl.Parse_error _ -> ()
    | _ -> Alcotest.failf "%s: %S should not parse" name s
  in
  rejects "unknown pass" "mem2reg,frobnicate";
  rejects "MIR pass before isel" "regalloc,isel";
  rejects "IR pass after isel" "isel,mem2reg";
  rejects "duplicate isel" "isel,isel";
  rejects "layout not last" "isel,layout,peephole";
  rejects "layout without isel" "mem2reg,layout"

(* any well-formed spec round-trips: random pass sequences (duplicates
   allowed — clean-up rounds repeat passes), random isel/layout structure *)
let qcheck_roundtrip =
  let ir_names = [ "mem2reg"; "constfold"; "simplifycfg"; "cse"; "dce"; "sccp"; "licm"; "llfi-fi" ] in
  let mir_names = [ "regalloc"; "frame"; "peephole"; "refine-fi" ] in
  let gen =
    QCheck.Gen.(
      let pick names = list_size (int_bound 6) (oneofl names) in
      pick ir_names >>= fun ir ->
      bool >>= fun isel ->
      (if isel then pick mir_names else return []) >>= fun mir ->
      (if isel then bool else return false) >>= fun layout ->
      return { Pl.ir; isel; mir; layout })
  in
  let arb = QCheck.make ~print:Pl.print gen in
  QCheck.Test.make ~count:500 ~name:"pipeline print/parse round-trip" arb (fun s ->
      Pl.equal s (Pl.parse (Pl.print s)))

(* ---- interleaved verification vs chaos -------------------------------- *)

let break_mir = { T.break_mir = true; flaky_golden = false }

(* the chaos pass corrupts a SetupFI splice right after refine-fi; the
   interleaved MIR verifier must catch it before layout *)
let test_verify_each_catches_chaos () =
  match T.prepare ~verify_each:true ~chaos:break_mir T.Refine prog_a with
  | exception T.Quarantine ("mir-verifier", _) -> ()
  | exception e -> Alcotest.failf "expected mir-verifier quarantine, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "chaos-corrupted MIR escaped interleaved verification"

let test_chaos_cell_quarantined () =
  let cell =
    Ex.run_cell ~verify_each:true ~samples:4 ~seed:11 ~chaos:break_mir T.Refine
      ~program:"chaos" ~source:prog_a ()
  in
  (match cell.Ex.quarantined with
  | Some reason ->
    Alcotest.(check bool) "mir-verifier category" true
      (String.length reason >= 12 && String.sub reason 0 12 = "mir-verifier")
  | None -> Alcotest.fail "chaos cell was not quarantined");
  Alcotest.(check int) "no samples ran" 0 (Ex.total cell.Ex.counts)

(* an IR-stage verifier trip must quarantine with its own category *)
let test_ir_verifier_quarantines () =
  let m = Refine_minic.Frontend.compile prog_a in
  (* corrupting the module is awkward; instead check the classification
     path directly through a spec whose IR stage rejects a MIR pass *)
  (match Pl.run_ir { Pl.empty with Pl.ir = [ "regalloc" ] } m with
  | exception Pl.Parse_error _ -> ()
  | _ -> Alcotest.fail "MIR pass in the IR stage must be rejected")

(* ---- fixed-seed campaign equality: cache on / off / verify-each ------- *)

let matrix ?verify_each ?cache () =
  T.reset_artifact_caches ();
  Ex.run_matrix ~domains:2 ?verify_each ?cache ~samples:10 ~seed:42
    [ ("A", prog_a); ("B", prog_b) ]
    [ T.Refine; T.Llfi ]

let cell_sig (c : Ex.cell) =
  Printf.sprintf "%s/%s crash=%d soc=%d benign=%d err=%d cost=%Ld dyn=%Ld static=%d" c.Ex.program
    (T.kind_name c.Ex.tool) c.Ex.counts.Ex.crash c.Ex.counts.Ex.soc c.Ex.counts.Ex.benign
    c.Ex.counts.Ex.tool_error c.Ex.injection_cost c.Ex.profile.Refine_core.Fault.dyn_count
    c.Ex.static_instrumented

let test_campaign_equality () =
  let baseline = List.map cell_sig (matrix ~cache:false ()) in
  let cached = List.map cell_sig (matrix ()) in
  let verified = List.map cell_sig (matrix ~verify_each:true ()) in
  Alcotest.(check (list string)) "cache off = cache on" baseline cached;
  Alcotest.(check (list string)) "cache off = verify-each" baseline verified

(* ---- cache behavior ---------------------------------------------------- *)

(* the IR tier shares the tool-independent compile: three tools over one
   source must run the front end + IR stage exactly once *)
let test_ir_tier_shared_across_tools () =
  T.reset_artifact_caches ();
  ignore (T.prepare T.Refine prog_a);
  ignore (T.prepare T.Llfi prog_a);
  ignore (T.prepare T.Pinfi prog_a);
  Alcotest.(check int) "one compile invocation for three tools" 1 (T.compile_invocations ());
  T.reset_artifact_caches ();
  ignore (T.prepare ~cache:false T.Refine prog_a);
  ignore (T.prepare ~cache:false T.Llfi prog_a);
  Alcotest.(check int) "uncached tools compile independently" 2 (T.compile_invocations ())

let test_prepared_tier_hit () =
  T.reset_artifact_caches ();
  let p1 = T.prepare T.Refine prog_a in
  let p2 = T.prepare T.Refine prog_a in
  Alcotest.(check bool) "second prepare served from cache" true (p1 == p2);
  Alcotest.(check bool) "hit counted" true ((T.prepared_cache_stats ()).AC.hits >= 1)

let test_chaos_bypasses_cache () =
  T.reset_artifact_caches ();
  ignore (T.prepare T.Refine prog_a);
  let before = T.prepared_cache_stats () in
  (try ignore (T.prepare ~chaos:break_mir T.Refine prog_a) with T.Quarantine _ -> ());
  let after = T.prepared_cache_stats () in
  Alcotest.(check int) "chaos run never consults the prepared tier" before.AC.hits after.AC.hits;
  Alcotest.(check int) "chaos run never poisons the prepared tier" before.AC.entries
    after.AC.entries

(* regression: a prepared image mutated after caching (chaos hooks, the
   extern slot -1 post-layout mutation path) must never be served again *)
let test_mutated_image_never_served () =
  T.reset_artifact_caches ();
  let p1 = T.prepare T.Refine prog_a in
  (* post-layout code mutation, as the §14 fallback path would do *)
  p1.T.image.Refine_backend.Layout.code.(0) <- M.Mmov (R.gpr 5, M.Imm 0xBADL);
  let inv_before = (T.prepared_cache_stats ()).AC.invalidations in
  let p2 = T.prepare T.Refine prog_a in
  Alcotest.(check bool) "mutated entry dropped, fresh prepare returned" true (p1 != p2);
  Alcotest.(check bool) "invalidation counted" true
    ((T.prepared_cache_stats ()).AC.invalidations > inv_before);
  (* the fresh copy is clean and a further lookup serves it again *)
  let p3 = T.prepare T.Refine prog_a in
  Alcotest.(check bool) "recovered entry served" true (p2 == p3)

let tests =
  [
    Alcotest.test_case "levels round-trip" `Quick test_level_roundtrip;
    Alcotest.test_case "parse tolerates whitespace" `Quick test_parse_whitespace;
    Alcotest.test_case "parse rejects ill-formed specs" `Quick test_parse_errors;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
    Alcotest.test_case "verify-each catches chaos MIR" `Quick test_verify_each_catches_chaos;
    Alcotest.test_case "chaos cell quarantined" `Quick test_chaos_cell_quarantined;
    Alcotest.test_case "stage/layer mismatch rejected" `Quick test_ir_verifier_quarantines;
    Alcotest.test_case "campaign equality: cache/verify modes" `Slow test_campaign_equality;
    Alcotest.test_case "IR tier shared across tools" `Quick test_ir_tier_shared_across_tools;
    Alcotest.test_case "prepared tier hit" `Quick test_prepared_tier_hit;
    Alcotest.test_case "chaos bypasses cache" `Quick test_chaos_bypasses_cache;
    Alcotest.test_case "mutated image never served" `Quick test_mutated_image_never_served;
  ]
