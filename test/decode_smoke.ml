(* Decoded-engine smoke: exercised on every `dune runtest` via the
   @decode-smoke alias so the pre-decoded executor's bit-identity and
   zero-allocation guarantees are covered by CI, not just by the (slower)
   differential property suite.

   Runs the same small REFINE cell with the legacy interpreter and the
   decoded engine, requires the outcome tables to match exactly, prints
   the measured throughputs, and asserts the decoded hot loop allocates
   nothing: minor-heap words must not scale with the step count. *)

module T = Refine_core.Tool
module E = Refine_campaign.Experiment
module X = Refine_machine.Exec
module M = Refine_mir.Minstr
module R = Refine_mir.Reg
module MF = Refine_mir.Mfunc
module L = Refine_backend.Layout

let src =
  "global float acc[4]; int main() { int i; float x = 1.5; int s = 0; for (i = 0; i < 50; i = \
   i + 1) { x = x * 1.01 + 0.1; s = s + i; acc[i % 4] = x; } print_int(s); print_float(x); \
   return 0; }"

let summary (c : E.cell) =
  Printf.sprintf "crash=%d soc=%d benign=%d err=%d cost=%Ld" c.E.counts.E.crash c.E.counts.E.soc
    c.E.counts.E.benign c.E.counts.E.tool_error c.E.injection_cost

let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (Unix.gettimeofday () -. t0, v)

let image_of instrs =
  let mf = MF.create "main" in
  List.iteri
    (fun k i ->
      let b = MF.add_block mf k in
      b.MF.code <- [ i ])
    instrs;
  L.build ~globals:[] [ mf ]

let () =
  (* --- campaign equality, decoded on vs off --------------------------- *)
  let samples = 80 in
  let run () =
    T.reset_artifact_caches ();
    E.run_cell ~domains:2 ~samples ~seed:20170712 T.Refine ~program:"smoke" ~source:src ()
  in
  T.use_decode := false;
  let legacy_s, legacy = timed run in
  T.use_decode := true;
  let decoded_s, decoded = timed run in
  let legacy_sum = summary legacy and decoded_sum = summary decoded in
  Printf.printf "decode-smoke: legacy %.1f samples/s, decoded %.1f samples/s\n"
    (float_of_int samples /. legacy_s)
    (float_of_int samples /. decoded_s);
  if legacy_sum <> decoded_sum then begin
    Printf.printf "decode-smoke FAILED: outcome tables differ\n  legacy:  %s\n  decoded: %s\n"
      legacy_sum decoded_sum;
    exit 1
  end;

  (* --- decoded hot loop allocates nothing ------------------------------ *)
  (* no self-latch (the back edge jumps over four instructions), so every
     iteration goes through fused-pair and single-closure dispatch rather
     than the O(1) bulk-burn shortcut *)
  let image =
    image_of
      [
        M.Mmov (R.gpr 1, M.Imm 7L);
        M.Mmov (R.gpr 3, M.Imm 8192L);
        M.Mcmp (R.gpr 1, M.Imm 0L) (* pc 2: loop head *);
        M.Mjcc (M.CEq, 8) (* never taken *);
        M.Mstore (R.gpr 1, R.gpr 3, 0);
        M.Msetcc (M.CNe, R.gpr 2);
        M.Mmov (R.gpr 4, M.Reg (R.gpr 2));
        M.Mjmp 2;
        M.Mhalt;
      ]
  in
  let dp = X.decode image in
  let eng = X.create image in
  X.install_decoded eng (Some dp);
  let run_steps n =
    X.Decoded_engine.loop eng ~max_steps:(eng.X.steps + n) ~max_cost:max_int ~check:ignore
  in
  run_steps 10_000 (* warm-up *);
  let measure n =
    let w0 = Gc.minor_words () in
    run_steps n;
    Gc.minor_words () -. w0
  in
  (* any per-instruction allocation makes the delta scale with the step
     count; per-call constants (the measurement itself) cancel *)
  let d_small = measure 100_000 in
  let d_large = measure 400_000 in
  if d_small <> d_large || eng.X.status <> X.Running then begin
    Printf.printf
      "decode-smoke FAILED: decoded hot loop allocates (%.0f minor words at 100k steps, %.0f at \
       400k)\n"
      d_small d_large;
    exit 1
  end;

  (* --- engine-level identity on the hand-built loop -------------------- *)
  let snap = X.snapshot image in
  let leg = X.create_from_snapshot snap in
  let dec = X.create_from_snapshot snap in
  X.install_decoded dec (Some dp);
  let budget = 500_000L in
  let rl = X.run ~max_steps:budget leg and rd = X.run ~max_steps:budget dec in
  if rl <> rd then begin
    Printf.printf "decode-smoke FAILED: engine-level divergence on the hand-built loop\n";
    exit 1
  end;
  Printf.printf "decode-smoke OK: outcome table bit-identical (%s), hot loop allocation-free\n"
    decoded_sum
