(* Pass-manager smoke test (DESIGN.md §15): a tiny 2-program x 2-tool
   campaign with interleaved verification AND the artifact cache on.

   Asserts end-to-end that
     - the campaign completes healthy (every sample resolved, no
       degradation) with --verify-each semantics on every pipeline pass,
     - the artifact cache was actually exercised (hits > 0: the IR tier
       shares the tool-independent compile across tools, and a repeated
       matrix is served from the prepared tier),
     - zero verifier trips: no cell quarantined, no invalidations, and
     - the cached rerun is bit-identical to the first run.

   Run via:  dune build @pass-smoke *)

module E = Refine_campaign.Experiment
module T = Refine_core.Tool
module AC = Refine_passes.Artifact_cache
module Reg = Refine_bench_progs.Registry

let () =
  let programs = [ "DC"; "EP" ] in
  let tools = [ T.Refine; T.Llfi ] in
  let samples = 12 and seed = 23 in
  let srcs = List.map (fun n -> (n, (Reg.find n).Reg.source)) programs in
  T.reset_artifact_caches ();

  let run () = E.run_matrix ~verify_each:true ~samples ~seed srcs tools in
  let first = run () in
  let rerun = run () in

  let fail msg =
    print_endline ("[pass-smoke] FAIL: " ^ msg);
    exit 1
  in
  let healthy cells =
    List.for_all
      (fun (c : E.cell) -> E.total c.E.counts = samples && c.E.quarantined = None)
      cells
  in
  if not (healthy first) then fail "first run degraded or quarantined under --verify-each";

  let identical =
    List.for_all2
      (fun (a : E.cell) (b : E.cell) ->
        a.E.counts = b.E.counts && a.E.injection_cost = b.E.injection_cost)
      first rerun
  in
  if not identical then fail "cached rerun differs from first run";

  let ir = T.ir_cache_stats () and prepared = T.prepared_cache_stats () in
  Printf.printf "[pass-smoke] ir cache: %d hits / %d misses; prepared: %d hits / %d misses\n%!"
    ir.AC.hits ir.AC.misses prepared.AC.hits prepared.AC.misses;
  if ir.AC.hits + prepared.AC.hits = 0 then fail "artifact cache was never hit";
  if ir.AC.invalidations + prepared.AC.invalidations > 0 then
    fail "verifier/fingerprint trips during a clean campaign";
  if T.compile_invocations () > List.length programs then
    fail "IR tier did not share compiles across tools";

  print_endline
    "[pass-smoke] PASS: verified pipeline campaign healthy, cache hit, zero verifier trips"
