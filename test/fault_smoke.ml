(* Fault-model smoke: exercised on every `dune runtest` via the
   @fault-smoke alias so the cross-layer fault models (DESIGN.md §18) stay
   covered end-to-end by CI, not just by the property suite.

   Runs a tiny 1-program x 3-tool campaign under every fault model,
   sequentially and with 4 worker domains, requires the outcome tables to
   match bit-exactly per model, round-trips the cells through the CSV
   schema, and checks the Instr_image decode-trap guarantee: a corrupted
   encoding crashes the simulated program, never the harness. *)

module F = Refine_core.Fault
module T = Refine_core.Tool
module E = Refine_campaign.Experiment
module Rep = Refine_campaign.Report
module Csv = Refine_campaign.Csv

let src =
  "global float acc[4]; global int bias = 7; int main() { int i; float x = 1.5; int s = 0; \
   for (i = 0; i < 40; i = i + 1) { x = x * 1.01 + 0.1; s = s + i + bias; acc[i % 4] = x; } \
   print_int(s); print_float(x); return 0; }"

let models = [ "reg"; "mem"; "instr"; "multi:3"; "burst:2" ]

let summary (c : E.cell) =
  Printf.sprintf "%s/%s crash=%d soc=%d benign=%d err=%d cost=%Ld" c.E.program
    (T.kind_name c.E.tool) c.E.counts.E.crash c.E.counts.E.soc c.E.counts.E.benign
    c.E.counts.E.tool_error c.E.injection_cost

let () =
  let all = ref [] in
  List.iter
    (fun name ->
      let model = F.model_of_string name in
      let run domains =
        E.run_matrix ~domains ~model ~samples:12 ~seed:20170712 [ ("tiny", src) ] Rep.tools
      in
      let seq = run 1 and par = run 4 in
      let a = List.map summary seq and b = List.map summary par in
      if a <> b then begin
        Printf.printf "fault-smoke FAILED: %s sequential <> domains 4\n  seq: %s\n  par: %s\n"
          name (String.concat " | " a) (String.concat " | " b);
        exit 1
      end;
      (if model = F.Instr_image then
         List.iter
           (fun (c : E.cell) ->
             if c.E.quarantined = None && c.E.counts.E.tool_error > 0 then begin
               Printf.printf "fault-smoke FAILED: instr decode trap surfaced as tool_error (%s)\n"
                 (summary c);
               exit 1
             end)
           seq);
      all := !all @ seq;
      Printf.printf "fault-smoke %-8s %s\n" name (String.concat " | " a))
    models;
  let back = Csv.of_string (Csv.to_string !all) in
  let key (c : E.cell) = (c.E.program, c.E.tool, c.E.model, c.E.counts, c.E.injection_cost) in
  if List.map key back <> List.map key !all then begin
    Printf.printf "fault-smoke FAILED: CSV round-trip lost per-model cells\n";
    exit 1
  end;
  Printf.printf "fault-smoke OK: %d models bit-identical across domain counts, CSV round-trip\n"
    (List.length models)
