(* Optimization pass tests: structural assertions plus semantic
   preservation (interpreter output unchanged by every pass). *)

module I = Refine_ir.Ir
module In = Refine_ir.Interp
module F = Refine_minic.Frontend
module P = Refine_passes.Pipeline

let sample_src =
  {|
global int n = 12;
global float out[12];
float kernel(float a, float b) { return a * b + a / (b + 1.0); }
int main() {
  int i;
  float acc = 0.0;
  for (i = 0; i < n; i = i + 1) {
    float x = tofloat(i) * 0.5;
    float y = tofloat(n - i);
    out[i] = kernel(x, y) + kernel(x, y);   // CSE fodder
    acc = acc + out[i] * 2.0 + 0.0;          // constfold fodder
  }
  if (1 == 1) { print_float(acc); } else { print_float(0.0); }
  int j = 0;
  while (j < 5) {
    float invariant = tofloat(n) * 3.0;      // LICM fodder
    acc = acc + invariant;
    j = j + 1;
  }
  print_float(acc);
  print_int(j);
  return 0;
}
|}

let compile () = F.compile sample_src

let run m = (In.run m).In.output

let count_instrs m =
  List.fold_left (fun acc f -> acc + Refine_ir.Printer.count_instrs f) 0 m.I.funcs

let count_matching m p =
  List.fold_left
    (fun acc (f : I.func) ->
      List.fold_left
        (fun acc (b : I.block) -> acc + List.length (List.filter p b.I.body))
        acc f.I.blocks)
    0 m.I.funcs

let preserve name pass =
  let m = compile () in
  let before = run m in
  List.iter pass m.I.funcs;
  Refine_ir.Verify.check_module m;
  let after = run m in
  Alcotest.(check string) (name ^ " preserves semantics") before after

let test_mem2reg_semantics () = preserve "mem2reg" Refine_ir.Mem2reg.run

let test_mem2reg_promotes () =
  let m = compile () in
  let before = count_matching m (function I.Alloca _ -> true | _ -> false) in
  List.iter Refine_ir.Mem2reg.run m.I.funcs;
  let after = count_matching m (function I.Alloca _ -> true | _ -> false) in
  (* every scalar slot goes; the array alloca pattern stays only for local
     arrays (this program has none, arrays are global) *)
  Alcotest.(check bool) "allocas promoted" true (after < before);
  Alcotest.(check int) "all scalar slots promoted" 0 after

let test_mem2reg_inserts_phis () =
  let m = compile () in
  List.iter Refine_ir.Mem2reg.run m.I.funcs;
  let phis =
    List.fold_left
      (fun acc (f : I.func) ->
        List.fold_left (fun acc b -> acc + List.length b.I.phis) acc f.I.blocks)
      0 m.I.funcs
  in
  Alcotest.(check bool) "phis exist at joins" true (phis > 0)

let test_mem2reg_keeps_escaping_slot () =
  (* a local array's alloca must not be promoted: its address is used *)
  let m = F.compile "int main() { int a[4]; a[2] = 7; print_int(a[2]); return 0; }" in
  List.iter Refine_ir.Mem2reg.run m.I.funcs;
  let arrays = count_matching m (function I.Alloca (_, 32) -> true | _ -> false) in
  Alcotest.(check int) "array alloca kept" 1 arrays;
  Alcotest.(check string) "still works" "7\n" (run m)

let test_constfold_semantics () = preserve "constfold" Refine_ir.Constfold.run

let test_constfold_folds () =
  let m = F.compile "int main() { int x = 2 + 3 * 4; print_int(x * 1 + 0); return 0; }" in
  List.iter Refine_ir.Mem2reg.run m.I.funcs;
  List.iter Refine_ir.Constfold.run m.I.funcs;
  List.iter Refine_ir.Dce.run m.I.funcs;
  let arith = count_matching m (function I.Ibinop _ -> true | _ -> false) in
  Alcotest.(check int) "all arithmetic folded away" 0 arith;
  Alcotest.(check string) "value" "14\n" (run m)

let test_constfold_keeps_trap () =
  (* 1/0 must not be folded away: the runtime trap is the semantics *)
  let m = F.compile "int main() { int z = 0; print_int(1 / z); return 0; }" in
  List.iter Refine_ir.Mem2reg.run m.I.funcs;
  List.iter Refine_ir.Constfold.run m.I.funcs;
  Alcotest.(check bool) "still traps" true
    (try ignore (In.run m); false with In.Trap _ -> true)

let test_constfold_branch () =
  let m = F.compile "int main() { if (2 > 1) { print_int(1); } else { print_int(0); } return 0; }" in
  let before = run m in
  List.iter Refine_ir.Mem2reg.run m.I.funcs;
  List.iter Refine_ir.Constfold.run m.I.funcs;
  List.iter Refine_ir.Simplifycfg.run m.I.funcs;
  Refine_ir.Verify.check_module m;
  Alcotest.(check string) "same output" before (run m);
  let cbrs =
    List.fold_left
      (fun acc (f : I.func) ->
        List.fold_left
          (fun acc (b : I.block) -> acc + (match b.I.term with I.Cbr _ -> 1 | _ -> 0))
          acc f.I.blocks)
      0 m.I.funcs
  in
  Alcotest.(check int) "branch folded" 0 cbrs

let test_cse_semantics () =
  preserve "cse" (fun f -> Refine_ir.Mem2reg.run f; Refine_ir.Cse.run f)

let test_cse_eliminates () =
  let m =
    F.compile
      "int main() { int a = 5; int b = a * 7 + 1; int c = a * 7 + 1; print_int(b + c); return 0; }"
  in
  List.iter Refine_ir.Mem2reg.run m.I.funcs;
  let before = count_instrs m in
  List.iter Refine_ir.Cse.run m.I.funcs;
  List.iter Refine_ir.Dce.run m.I.funcs;
  Refine_ir.Verify.check_module m;
  Alcotest.(check bool) "fewer instructions" true (count_instrs m < before);
  Alcotest.(check string) "value" "72\n" (run m)

let test_cse_commutative () =
  let m =
    F.compile
      "int main() { int a = 6; int b = 7; print_int(a * b + b * a); return 0; }"
  in
  List.iter Refine_ir.Mem2reg.run m.I.funcs;
  List.iter Refine_ir.Cse.run m.I.funcs;
  List.iter Refine_ir.Dce.run m.I.funcs;
  let muls = count_matching m (function I.Ibinop (_, I.Mul, _, _) -> true | _ -> false) in
  Alcotest.(check int) "one multiply" 1 muls;
  Alcotest.(check string) "value" "84\n" (run m)

let test_cse_does_not_merge_loads () =
  (* loads may not be merged across a store *)
  let m =
    F.compile
      "global int g = 1; int main() { int a = g; g = 5; int b = g; print_int(a + b); return 0; }"
  in
  List.iter Refine_ir.Mem2reg.run m.I.funcs;
  List.iter Refine_ir.Cse.run m.I.funcs;
  Alcotest.(check string) "6" "6\n" (run m)

let test_dce_semantics () = preserve "dce" (fun f -> Refine_ir.Mem2reg.run f; Refine_ir.Dce.run f)

let test_dce_removes_dead () =
  let m = F.compile "int main() { int dead = 3 * 14; print_int(9); return 0; }" in
  List.iter Refine_ir.Mem2reg.run m.I.funcs;
  List.iter Refine_ir.Dce.run m.I.funcs;
  let arith = count_matching m (function I.Ibinop _ -> true | _ -> false) in
  Alcotest.(check int) "dead mul removed" 0 arith

let test_dce_keeps_calls () =
  let m = F.compile "int f() { print_int(1); return 2; } int main() { int unused = f(); return 0; }" in
  let before = run m in
  List.iter Refine_ir.Mem2reg.run m.I.funcs;
  List.iter Refine_ir.Dce.run m.I.funcs;
  Alcotest.(check string) "side effect kept" before (run m)

let test_simplifycfg_semantics () =
  preserve "simplifycfg" (fun f -> Refine_ir.Mem2reg.run f; Refine_ir.Simplifycfg.run f)

let test_simplifycfg_merges () =
  let m = compile () in
  List.iter Refine_ir.Mem2reg.run m.I.funcs;
  List.iter Refine_ir.Constfold.run m.I.funcs;
  let count_blocks () =
    List.fold_left (fun acc (f : I.func) -> acc + List.length f.I.blocks) 0 m.I.funcs
  in
  let before = count_blocks () in
  List.iter Refine_ir.Simplifycfg.run m.I.funcs;
  Refine_ir.Verify.check_module m;
  Alcotest.(check bool) "fewer blocks" true (count_blocks () < before)

let test_licm_semantics () =
  preserve "licm" (fun f ->
      Refine_ir.Mem2reg.run f;
      Refine_ir.Constfold.run f;
      Refine_ir.Simplifycfg.run f;
      Refine_ir.Licm.run f)

let test_licm_hoists () =
  let m =
    F.compile
      {|
global int n = 50;
int main() {
  int i; int acc = 0;
  int a = 13;
  for (i = 0; i < n; i = i + 1) { acc = acc + a * a * a; }
  print_int(acc);
  return 0;
}
|}
  in
  let before_out = run m in
  List.iter
    (fun f ->
      Refine_ir.Mem2reg.run f;
      Refine_ir.Constfold.run f;
      Refine_ir.Simplifycfg.run f)
    m.I.funcs;
  (* steps with the invariant multiply still in the loop *)
  let steps_before = (In.run m).In.steps in
  List.iter Refine_ir.Licm.run m.I.funcs;
  Refine_ir.Verify.check_module m;
  let r = In.run m in
  Alcotest.(check string) "same output" before_out r.In.output;
  Alcotest.(check bool) "fewer dynamic steps after hoisting" true (r.In.steps < steps_before)

let test_full_pipeline_levels () =
  List.iter
    (fun level ->
      let m = F.compile sample_src in
      let before = run m in
      P.optimize ~verify:true level m;
      Alcotest.(check string)
        (P.string_of_level level ^ " preserves semantics")
        before (run m))
    [ P.O0; P.O1; P.O2 ]

let test_pipeline_reduces_steps () =
  let m0 = F.compile sample_src in
  let m2 = F.compile sample_src in
  P.optimize P.O2 m2;
  let s0 = (In.run m0).In.steps in
  let s2 = (In.run m2).In.steps in
  Alcotest.(check bool) "O2 runs fewer steps than O0" true (s2 < s0)

let test_inline_semantics () =
  (* module-level pass: run the inliner on the sample and compare outputs *)
  let m = compile () in
  let before = run m in
  List.iter Refine_ir.Mem2reg.run m.I.funcs;
  let n = Refine_ir.Inline.run m in
  Refine_ir.Verify.check_module m;
  Alcotest.(check bool) "inlined at least one site" true (n > 0);
  Alcotest.(check string) "inline preserves semantics" before (run m)

let test_inline_removes_calls () =
  let m =
    F.compile
      {|
float sq(float x) { return x * x; }
int main() {
  int i; float s = 0.0;
  for (i = 0; i < 10; i = i + 1) { s = s + sq(tofloat(i)); }
  print_float(s);
  return 0;
}
|}
  in
  P.optimize ~verify:true P.O2 m;
  let main = I.find_func m "main" in
  let calls =
    List.fold_left
      (fun acc (b : I.block) ->
        acc
        + List.length
            (List.filter (function I.Call (_, _, "sq", _) -> true | _ -> false) b.I.body))
      0 main.I.blocks
  in
  Alcotest.(check int) "sq fully inlined" 0 calls;
  Alcotest.(check string) "value" "285\n" (run m)

let test_inline_skips_recursion () =
  let m =
    F.compile
      {|
int fib(int k) { if (k < 2) { return k; } return fib(k - 1) + fib(k - 2); }
int main() { print_int(fib(12)); return 0; }
|}
  in
  P.optimize ~verify:true P.O2 m;
  Alcotest.(check int) "two functions remain" 2 (List.length m.I.funcs);
  Alcotest.(check string) "value" "144\n" (run m)

let test_sccp_semantics () =
  preserve "sccp" (fun f ->
      Refine_ir.Mem2reg.run f;
      Refine_ir.Sccp.run f;
      Refine_ir.Simplifycfg.run f)

let test_sccp_through_phi () =
  (* a constant reaching a phi only over executable edges: plain constant
     folding cannot see this, SCCP can *)
  let m =
    F.compile
      {|
int main() {
  int flag = 1;
  int x;
  if (flag == 1) { x = 7; } else { x = 1000; }
  // x is provably 7: the else edge is unreachable
  if (x == 7) { print_int(42); } else { print_int(0); }
  return 0;
}
|}
  in
  List.iter
    (fun f ->
      Refine_ir.Mem2reg.run f;
      Refine_ir.Sccp.run f;
      Refine_ir.Simplifycfg.run f;
      Refine_ir.Dce.run f)
    m.I.funcs;
  Refine_ir.Verify.check_module m;
  Alcotest.(check string) "output" "42\n" (run m);
  let main = I.find_func m "main" in
  let cbrs =
    List.fold_left
      (fun acc (b : I.block) -> acc + (match b.I.term with I.Cbr _ -> 1 | _ -> 0))
      0 main.I.blocks
  in
  Alcotest.(check int) "all branches resolved" 0 cbrs

let test_memopt_semantics () =
  preserve "memopt" (fun f ->
      Refine_ir.Mem2reg.run f;
      Refine_ir.Memopt.run f)

let test_memopt_forwards () =
  (* store x @g; load @g  ->  the load disappears *)
  let m =
    F.compile
      "global int g; int main() { g = 41; int x = g + 1; print_int(x); return 0; }"
  in
  List.iter (fun f -> Refine_ir.Mem2reg.run f; Refine_ir.Cse.run f; Refine_ir.Memopt.run f)
    m.I.funcs;
  Refine_ir.Verify.check_module m;
  Alcotest.(check string) "42" "42\n" (run m);
  let loads = count_matching m (function I.Load _ -> true | _ -> false) in
  Alcotest.(check int) "load forwarded away" 0 loads

let test_memopt_dead_store () =
  let m =
    F.compile
      "global int g; int main() { g = 1; g = 2; print_int(g); return 0; }"
  in
  List.iter (fun f -> Refine_ir.Mem2reg.run f; Refine_ir.Cse.run f; Refine_ir.Memopt.run f)
    m.I.funcs;
  Refine_ir.Verify.check_module m;
  Alcotest.(check string) "2" "2\n" (run m);
  let stores = count_matching m (function I.Store _ -> true | _ -> false) in
  Alcotest.(check int) "first store dead" 1 stores

let test_memopt_respects_calls () =
  (* a call may write memory: no forwarding across it *)
  let m =
    F.compile
      {|
global int g;
void touch() { g = 9; }
int main() { g = 1; touch(); print_int(g); return 0; }
|}
  in
  List.iter (fun f -> Refine_ir.Mem2reg.run f; Refine_ir.Cse.run f; Refine_ir.Memopt.run f)
    m.I.funcs;
  Refine_ir.Verify.check_module m;
  Alcotest.(check string) "9" "9\n" (run m)

let test_benchmarks_optimize_and_verify () =
  List.iter
    (fun (b : Refine_bench_progs.Registry.bench) ->
      let m = F.compile b.Refine_bench_progs.Registry.source in
      P.optimize ~verify:true P.O2 m)
    Refine_bench_progs.Registry.all

let tests =
  [
    Alcotest.test_case "mem2reg semantics" `Quick test_mem2reg_semantics;
    Alcotest.test_case "mem2reg promotes" `Quick test_mem2reg_promotes;
    Alcotest.test_case "mem2reg inserts phis" `Quick test_mem2reg_inserts_phis;
    Alcotest.test_case "mem2reg keeps arrays" `Quick test_mem2reg_keeps_escaping_slot;
    Alcotest.test_case "constfold semantics" `Quick test_constfold_semantics;
    Alcotest.test_case "constfold folds" `Quick test_constfold_folds;
    Alcotest.test_case "constfold keeps traps" `Quick test_constfold_keeps_trap;
    Alcotest.test_case "constfold folds branches" `Quick test_constfold_branch;
    Alcotest.test_case "cse semantics" `Quick test_cse_semantics;
    Alcotest.test_case "cse eliminates" `Quick test_cse_eliminates;
    Alcotest.test_case "cse commutative" `Quick test_cse_commutative;
    Alcotest.test_case "cse respects stores" `Quick test_cse_does_not_merge_loads;
    Alcotest.test_case "dce semantics" `Quick test_dce_semantics;
    Alcotest.test_case "dce removes dead code" `Quick test_dce_removes_dead;
    Alcotest.test_case "dce keeps calls" `Quick test_dce_keeps_calls;
    Alcotest.test_case "simplifycfg semantics" `Quick test_simplifycfg_semantics;
    Alcotest.test_case "simplifycfg merges blocks" `Quick test_simplifycfg_merges;
    Alcotest.test_case "licm semantics" `Quick test_licm_semantics;
    Alcotest.test_case "licm hoists invariants" `Quick test_licm_hoists;
    Alcotest.test_case "pipeline levels preserve semantics" `Quick test_full_pipeline_levels;
    Alcotest.test_case "O2 reduces dynamic steps" `Quick test_pipeline_reduces_steps;
    Alcotest.test_case "inline semantics" `Quick test_inline_semantics;
    Alcotest.test_case "inline removes calls" `Quick test_inline_removes_calls;
    Alcotest.test_case "inline skips recursion" `Quick test_inline_skips_recursion;
    Alcotest.test_case "sccp semantics" `Quick test_sccp_semantics;
    Alcotest.test_case "sccp through phi" `Quick test_sccp_through_phi;
    Alcotest.test_case "memopt semantics" `Quick test_memopt_semantics;
    Alcotest.test_case "memopt forwards loads" `Quick test_memopt_forwards;
    Alcotest.test_case "memopt dead stores" `Quick test_memopt_dead_store;
    Alcotest.test_case "memopt respects calls" `Quick test_memopt_respects_calls;
    Alcotest.test_case "benchmarks optimize+verify" `Quick test_benchmarks_optimize_and_verify;
  ]
