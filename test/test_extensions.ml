(* Tests for the extension features: error-propagation analysis, opcode
   corruption (paper §4.5 future work), and the multi-bit fault model. *)

module T = Refine_core.Tool
module F = Refine_core.Fault
module Prop = Refine_core.Propagation
module Op = Refine_core.Opcode_fi
module I = Refine_ir.Ir
module M = Refine_mir.Minstr
module R = Refine_mir.Reg
module P = Refine_support.Prng

(* ---- propagation ---- *)

let prop_src =
  {|
global float sink[8];
int main() {
  int i;
  float dead = 123.0;         // reaches nothing
  float live = 1.0;
  int idx = 0;
  for (i = 0; i < 8; i = i + 1) {
    idx = (i * 3) % 8;        // feeds an address
    live = live + tofloat(i); // feeds output via sink
    sink[idx] = live;
  }
  print_float(sink[5]);
  dead = dead * 2.0;
  return 0;
}
|}

(* mem2reg only: O1's clean-up would DCE the benign-prone values the test
   needs to observe *)
let ssa_module src =
  let m = Refine_minic.Frontend.compile src in
  List.iter Refine_ir.Mem2reg.run m.I.funcs;
  m

let test_propagation_classes () =
  let m = ssa_module prop_src in
  let main = I.find_func m "main" in
  (* find specific defining instructions by shape *)
  let find p =
    List.concat_map (fun (b : I.block) -> b.I.body) main.I.blocks
    |> List.find_map (fun i -> if p i then I.instr_def i else None)
  in
  (* the (i*3)%8 remainder feeds the store address *)
  let idx_def = find (function I.Ibinop (_, I.Rem, _, I.ICst 8L) -> true | _ -> false) in
  (match idx_def with
  | Some v ->
    let inf = Prop.analyze main v in
    Alcotest.(check bool) "index reaches an address" true inf.Prop.reaches_address;
    Alcotest.(check bool) "index is crash-prone" true (Prop.predict inf = Prop.Predict_crash)
  | None -> Alcotest.fail "no index instruction found");
  (* the dead multiply reaches nothing *)
  let dead_def = find (function I.Fbinop (_, I.Fmul, _, I.FCst 2.0) -> true | _ -> false) in
  match dead_def with
  | Some v ->
    let inf = Prop.analyze main v in
    Alcotest.(check bool) "dead value is benign-prone" true
      (Prop.predict inf = Prop.Predict_benign)
  | None -> Alcotest.fail "no dead instruction found"

let test_propagation_fanout () =
  let m = ssa_module prop_src in
  let main = I.find_func m "main" in
  (* a loop-carried accumulator has a larger slice than a terminal value *)
  let sums =
    List.concat_map (fun (b : I.block) -> b.I.body) main.I.blocks
    |> List.filter_map (fun i ->
           match I.instr_def i with Some d -> Some (Prop.analyze main d) | None -> None)
  in
  Alcotest.(check bool) "some values have nonzero fanout" true
    (List.exists (fun inf -> inf.Prop.fanout > 0) sums)

let test_propagation_summary () =
  let m = ssa_module prop_src in
  let main = I.find_func m "main" in
  let c, s, b = Prop.summarize main in
  Alcotest.(check bool) "all classes populated" true (c > 0 && s > 0 && b > 0)

(* ---- opcode corruption ---- *)

let test_opcode_alternatives_valid () =
  let add = M.Mbin (I.Add, R.gpr 1, R.gpr 2, M.Imm 3L) in
  let alts = Op.alternatives add in
  Alcotest.(check bool) "several alternatives" true (List.length alts >= 5);
  Alcotest.(check bool) "original excluded" true (not (List.mem add alts));
  (* alternatives keep the operand shape: same outputs *)
  List.iter
    (fun a -> Alcotest.(check bool) "same outputs" true (M.outputs a = M.outputs add))
    alts;
  (* a mov has no same-shape alternative: not a target *)
  Alcotest.(check bool) "mov not a target" false (Op.is_target (M.Mmov (R.gpr 1, M.Imm 0L)));
  Alcotest.(check bool) "load <-> lea" true (Op.is_target (M.Mload (R.gpr 1, R.gpr 2, 8)))

let opcode_src =
  {|
int main() {
  int i; int s = 0;
  for (i = 0; i < 50; i = i + 1) { s = s + i * 3; }
  print_int(s);
  return 0;
}
|}

let prepare_image src =
  let m = Refine_minic.Frontend.compile src in
  Refine_passes.Pipeline.optimize Refine_passes.Pipeline.O2 m;
  Refine_passes.Pipeline.compile m

let test_opcode_profile_transparent () =
  let image = prepare_image opcode_src in
  let p = Op.profile image in
  Alcotest.(check string) "golden output" "3675\n" p.F.golden_output;
  Alcotest.(check bool) "targets exist" true (Int64.compare p.F.dyn_count 0L > 0)

let test_opcode_injection () =
  let image = prepare_image opcode_src in
  let p = Op.profile image in
  let non_benign = ref 0 in
  let fired = ref 0 in
  for seed = 1 to 30 do
    let e = Op.run_injection image p (P.create seed) in
    if e.F.fault <> None then incr fired;
    if e.F.outcome <> F.Benign then incr non_benign
  done;
  Alcotest.(check bool) "most corruptions fire" true (!fired >= 28);
  (* replacing an opcode in a 50-iteration loop is almost never harmless *)
  Alcotest.(check bool) "opcode corruption usually visible" true (!non_benign > 20)

let test_opcode_image_not_shared () =
  (* corruption must not leak into later experiments on the same image *)
  let image = prepare_image opcode_src in
  let p = Op.profile image in
  ignore (Op.run_injection image p (P.create 1));
  let eng = Refine_machine.Exec.create image in
  let r = Refine_machine.Exec.run eng in
  Alcotest.(check string) "image intact after corruption run" p.F.golden_output
    r.Refine_machine.Exec.output

(* ---- multi-bit faults ---- *)

let test_multibit_flips () =
  let src = opcode_src in
  let image = prepare_image src in
  (* run one injection with flips=2 and check it behaves like a fault *)
  let ctrl2 =
    Refine_core.Pinfi.create ~flips:2 (Refine_core.Runtime.Profile)
  in
  Alcotest.(check int) "flips recorded" 2 ctrl2.Refine_core.Pinfi.flips;
  Alcotest.(check bool) "flips validated" true
    (try ignore (Refine_core.Pinfi.create ~flips:0 Refine_core.Runtime.Profile); false
     with Invalid_argument _ -> true);
  (* a double flip of the same register differs from a single flip for the
     same seed: outcome streams must be reproducible per configuration *)
  let outcome flips seed =
    let ctrl =
      Refine_core.Pinfi.create ~flips
        (Refine_core.Runtime.Inject
           { target = 20; rng = P.create seed; model = Refine_core.Fault.Reg_bit })
    in
    let eng = Refine_machine.Exec.create image in
    Refine_core.Pinfi.attach ctrl eng;
    let r = Refine_machine.Exec.run ~max_cost:10_000_000L eng in
    (r.Refine_machine.Exec.output, ctrl.Refine_core.Pinfi.record)
  in
  let o1a, r1a = outcome 1 5 in
  let o1b, r1b = outcome 1 5 in
  Alcotest.(check bool) "deterministic per config" true (o1a = o1b && r1a = r1b);
  let _, r2 = outcome 2 5 in
  Alcotest.(check bool) "double-bit fires too" true (r2 <> None)

(* ---- trace ---- *)

let test_trace_ring () =
  let image = prepare_image opcode_src in
  let eng = Refine_machine.Exec.create image in
  let t = Refine_machine.Trace.create ~capacity:8 () in
  Refine_machine.Trace.attach t eng;
  let r = Refine_machine.Exec.run eng in
  Alcotest.(check bool) "ran" true (r.Refine_machine.Exec.status = Refine_machine.Exec.Exited 0);
  let es = Refine_machine.Trace.entries t in
  Alcotest.(check int) "ring holds capacity" 8 (List.length es);
  Alcotest.(check int64) "total counted" r.Refine_machine.Exec.steps t.Refine_machine.Trace.total;
  (* the last executed instruction of a clean run is the final ret *)
  let last = List.nth es 7 in
  Alcotest.(check bool) "ends with ret" true
    (last.Refine_machine.Trace.instr = Refine_mir.Minstr.Mret);
  Alcotest.(check string) "owner" "main" last.Refine_machine.Trace.func

let test_trace_composes_with_hook () =
  let image = prepare_image opcode_src in
  let eng = Refine_machine.Exec.create image in
  let count = ref 0 in
  eng.Refine_machine.Exec.post_hook <- Some (fun _ _ _ -> incr count);
  let t = Refine_machine.Trace.create () in
  Refine_machine.Trace.attach t eng;
  let r = Refine_machine.Exec.run eng in
  Alcotest.(check bool) "previous hook still called" true
    (Int64.of_int !count = r.Refine_machine.Exec.steps)

(* ---- CSV ---- *)

let test_csv_roundtrip () =
  let cells =
    Refine_campaign.Experiment.run_matrix ~samples:10 ~seed:2
      [ ("tiny", "int main() { print_int(7); return 0; }") ]
      Refine_campaign.Report.tools
  in
  let s = Refine_campaign.Csv.to_string cells in
  let back = Refine_campaign.Csv.of_string s in
  Alcotest.(check int) "3 rows" 3 (List.length back);
  List.iter2
    (fun (a : Refine_campaign.Experiment.cell) (b : Refine_campaign.Experiment.cell) ->
      Alcotest.(check bool) "counts preserved" true (a.counts = b.counts);
      Alcotest.(check bool) "tool preserved" true (a.tool = b.tool);
      Alcotest.(check int64) "cost preserved" a.injection_cost b.injection_cost)
    cells back;
  Alcotest.(check bool) "bad header rejected" true
    (try ignore (Refine_campaign.Csv.of_string "nope\n1,2"); false
     with Refine_campaign.Csv.Parse_error _ -> true)

let tests =
  [
    Alcotest.test_case "propagation classes" `Quick test_propagation_classes;
    Alcotest.test_case "propagation fanout" `Quick test_propagation_fanout;
    Alcotest.test_case "propagation summary" `Quick test_propagation_summary;
    Alcotest.test_case "opcode alternatives" `Quick test_opcode_alternatives_valid;
    Alcotest.test_case "opcode profiling transparent" `Quick test_opcode_profile_transparent;
    Alcotest.test_case "opcode injection" `Quick test_opcode_injection;
    Alcotest.test_case "opcode image isolation" `Quick test_opcode_image_not_shared;
    Alcotest.test_case "multi-bit model" `Quick test_multibit_flips;
    Alcotest.test_case "trace ring buffer" `Quick test_trace_ring;
    Alcotest.test_case "trace composes with hooks" `Quick test_trace_composes_with_hook;
    Alcotest.test_case "csv roundtrip" `Quick test_csv_roundtrip;
  ]
