(* End-to-end smoke test for post-injection detach (DESIGN.md §20).

   The same fixed-seed 2-program x 2-tool campaign (REFINE + LLFI, the two
   tools whose samples can hand off) runs three times: detach disabled,
   detach enabled, and detach forced onto the branch-patched fallback
   target.  All three outcome tables — counts AND summed modeled cost —
   must be bit-identical, the detach counters must show that handoffs
   actually happened, and the Prometheus dump carrying them must survive
   the strict exposition-format linter.

   Run via:  dune build @detach-smoke *)

module E = Refine_campaign.Experiment
module T = Refine_core.Tool
module Reg = Refine_bench_progs.Registry
module Obs = Refine_obs
module M = Obs.Metrics

let fail fmt = Printf.ksprintf (fun s -> print_endline ("[detach-smoke] FAIL: " ^ s); exit 1) fmt

let summary (cells : E.cell list) =
  cells
  |> List.map (fun (c : E.cell) ->
         Printf.sprintf "%s/%s crash=%d soc=%d benign=%d err=%d cost=%Ld" c.E.program
           (T.kind_name c.E.tool) c.E.counts.E.crash c.E.counts.E.soc c.E.counts.E.benign
           c.E.counts.E.tool_error c.E.injection_cost)
  |> String.concat "; "

let counter_total name =
  List.fold_left
    (fun acc (n, _, v) ->
      match v with M.Counter c when n = name -> Int64.add acc c | _ -> acc)
    0L (M.snapshot ())

let () =
  let srcs = List.map (fun n -> (n, (Reg.find n).Reg.source)) [ "DC"; "EP" ] in
  let tools = [ T.Refine; T.Llfi ] in
  let samples = 12 and seed = 5 in
  let campaign () =
    T.reset_artifact_caches ();
    summary (E.run_matrix ~samples ~seed srcs tools)
  in

  Obs.Control.enable ();
  T.use_detach := false;
  let attached = campaign () in
  T.use_detach := true;
  let detached = campaign () in
  T.force_detach_fallback := true;
  let fallback = campaign () in
  T.force_detach_fallback := false;

  if detached <> attached then
    fail "detach changed the outcome table\n  off: %s\n  on:  %s" attached detached;
  if fallback <> attached then
    fail "forced fallback changed the outcome table\n  off:      %s\n  fallback: %s" attached
      fallback;
  print_endline "[detach-smoke] outcome tables bit-identical: off = on = forced-fallback";
  print_endline ("[detach-smoke] " ^ attached);

  (* the equality above must not be vacuous: handoffs really happened *)
  let fired = counter_total "refine_detach_total" in
  if fired <= 0L then fail "refine_detach_total is %Ld: no sample ever handed off" fired;
  Printf.printf "[detach-smoke] refine_detach_total = %Ld (declined = %Ld)\n%!" fired
    (counter_total "refine_detach_declined_total");

  (* the new series must reach the Prometheus surface and lint clean *)
  let prom = Filename.temp_file "refine_detach" ".prom" in
  M.save prom;
  let dump =
    let ic = open_in prom in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let contains needle =
    let lh = String.length dump and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub dump i ln = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun n -> if not (contains n) then fail "prometheus dump lacks %s" n)
    [
      "# TYPE refine_detach_total counter";
      "# TYPE refine_detach_drain_steps histogram";
      "refine_detach_drain_steps_bucket";
      "le=\"+Inf\"";
    ];
  (match Promlint.lint dump with
  | [] -> print_endline "[detach-smoke] promlint: dump is clean"
  | errs -> fail "promlint: %s" (String.concat "; " errs));
  Sys.remove prom;
  print_endline "[detach-smoke] PASS: detach invisible in results, visible in metrics"
