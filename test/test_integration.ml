(* End-to-end integration scenarios across the whole stack: language
   feature combinations, runtime traps surfacing through compiled code,
   exit-code classification, inlining of stack-allocating callees, and
   printing format guarantees. *)

module F = Refine_minic.Frontend
module E = Refine_machine.Exec
module T = Refine_core.Tool
module Fa = Refine_core.Fault

let run ?(opt = Refine_passes.Pipeline.O2) src =
  let m = F.compile src in
  Refine_passes.Pipeline.optimize ~verify:true opt m;
  let image = Refine_passes.Pipeline.compile m in
  let eng = E.create image in
  E.run ~max_steps:200_000_000L eng

let check_output ?(opt = Refine_passes.Pipeline.O2) name src expected =
  let r = run ~opt src in
  (match r.E.status with
  | E.Exited 0 -> ()
  | E.Exited c -> Alcotest.fail (Printf.sprintf "%s: exit %d" name c)
  | E.Trapped tr -> Alcotest.fail (name ^ ": " ^ E.string_of_trap tr)
  | _ -> Alcotest.fail (name ^ ": did not finish"));
  Alcotest.(check string) name expected r.E.output

let test_deep_recursion_overflows () =
  (* unbounded recursion must hit the machine's stack guard, not loop *)
  let r =
    run {|
int down(int n) { return down(n + 1); }
int main() { return down(0); }
|}
  in
  match r.E.status with
  | E.Trapped E.Stack_overflow -> ()
  | _ -> Alcotest.fail "expected stack overflow"

let test_bounded_recursion_ok () =
  check_output "ackermann-ish recursion"
    {|
int ack(int m, int n) {
  if (m == 0) { return n + 1; }
  if (n == 0) { return ack(m - 1, 1); }
  return ack(m - 1, ack(m, n - 1));
}
int main() { print_int(ack(2, 3)); return 0; }
|}
    "9\n"

let test_exit_code_propagates () =
  let r = run {|int main() { exit(7); return 0; }|} in
  (match r.E.status with
  | E.Exited 7 -> ()
  | _ -> Alcotest.fail "expected exit 7");
  (* and a nonzero exit classifies as a crash *)
  let profile =
    { Fa.golden_output = ""; golden_exit = 0; dyn_count = 1L; profile_cost = 1L }
  in
  Alcotest.(check bool) "nonzero exit = crash" true
    (Fa.classify profile { E.status = r.E.status; output = r.E.output; steps = 0L; cost = 0L; truncated = false; detached = false; drain_steps = 0 }
     = Fa.Crash)

let test_division_trap_end_to_end () =
  let r = run {|
global int zero;
int main() { print_int(10 / zero); return 0; }
|} in
  match r.E.status with
  | E.Trapped E.Div_by_zero -> ()
  | _ -> Alcotest.fail "expected division trap through compiled code"

let test_heap_exhaustion () =
  let r =
    run
      {|
int main() {
  int i;
  for (i = 0; i < 100000; i = i + 1) {
    float[] chunk = alloc_float(65536);
    chunk[0] = 1.0;
  }
  return 0;
}
|}
  in
  match r.E.status with
  | E.Trapped (E.Extern_fault _) -> () (* alloc reports out of heap *)
  | _ -> Alcotest.fail "expected heap exhaustion"

let test_inlined_callee_with_local_array () =
  (* the inlined callee's array alloca is hoisted to the caller's entry;
     repeated calls must not leak stack or corrupt values *)
  check_output "inlined local array"
    {|
int table_sum(int k) {
  int t[4];
  int i;
  for (i = 0; i < 4; i = i + 1) { t[i] = k * (i + 1); }
  return t[0] + t[1] + t[2] + t[3];
}
int main() {
  int i; int acc = 0;
  for (i = 0; i < 2000; i = i + 1) { acc = acc + table_sum(i % 5); }
  print_int(acc);
  return 0;
}
|}
    (* 2000 calls, k cycles 0..4: 10 * 400 * (0+1+2+3+4) *)
    "40000\n"

let test_print_formats () =
  check_output "float formats"
    {|
int main() {
  print_float(0.1);
  print_float_full(0.1);
  print_float(1.0 / 0.0);
  print_float(0.0 / 0.0);
  print_int(-9223372036854775807 - 1);
  return 0;
}
|}
    (* 0.0/0.0 yields the negative quiet NaN on x86; printf renders "-nan" *)
    "0.1\n0.10000000000000001\ninf\n-nan\n-9223372036854775808\n"

let test_global_init_values () =
  check_output "global initializers"
    {|
global int a = -42;
global float b = 2.5;
global int c;
int main() { print_int(a); print_float(b); print_int(c); return 0; }
|}
    "-42\n2.5\n0\n"

let test_mixed_recursion_and_arrays () =
  check_output "quicksort"
    {|
global int data[16];
void qsort_(int lo, int hi) {
  if (lo >= hi) { return; }
  int pivot = data[(lo + hi) / 2];
  int i = lo; int j = hi;
  while (i <= j) {
    while (data[i] < pivot) { i = i + 1; }
    while (data[j] > pivot) { j = j - 1; }
    if (i <= j) {
      int t = data[i]; data[i] = data[j]; data[j] = t;
      i = i + 1; j = j - 1;
    }
  }
  qsort_(lo, j);
  qsort_(i, hi);
}
int main() {
  int i;
  int seed = 99;
  for (i = 0; i < 16; i = i + 1) {
    seed = (seed * 1103515245 + 12345) & 2147483647;
    data[i] = seed % 100;
  }
  qsort_(0, 15);
  for (i = 1; i < 16; i = i + 1) {
    if (data[i - 1] > data[i]) { print_str("UNSORTED"); }
  }
  int cksum = 0;
  for (i = 0; i < 16; i = i + 1) { cksum = cksum + data[i] * (i + 1); }
  print_int(cksum);
  return 0;
}
|}
    (* golden value; the absence of "UNSORTED" proves the order *)
    "9488\n"

let test_fi_on_trap_prone_program () =
  (* a program that indexes through memory: injections must never hang the
     harness and must produce all three outcome kinds across seeds *)
  let src =
    {|
global int idx[32];
global float v[32];
int main() {
  int i;
  for (i = 0; i < 32; i = i + 1) { idx[i] = (i * 7) % 32; v[i] = tofloat(i) * 0.5; }
  float s = 0.0;
  for (i = 0; i < 32; i = i + 1) { s = s + v[idx[i]]; }
  print_float_full(s);
  return 0;
}
|}
  in
  List.iter
    (fun kind ->
      let p = T.prepare kind src in
      for seed = 1 to 25 do
        ignore (T.run_injection p (Refine_support.Prng.create seed))
      done)
    [ T.Refine; T.Llfi; T.Pinfi ];
  Alcotest.(check pass) "no hangs" () ()

let tests =
  [
    Alcotest.test_case "deep recursion overflows" `Quick test_deep_recursion_overflows;
    Alcotest.test_case "bounded recursion" `Quick test_bounded_recursion_ok;
    Alcotest.test_case "exit code propagates" `Quick test_exit_code_propagates;
    Alcotest.test_case "division trap end-to-end" `Quick test_division_trap_end_to_end;
    Alcotest.test_case "heap exhaustion" `Quick test_heap_exhaustion;
    Alcotest.test_case "inlined callee with array" `Quick test_inlined_callee_with_local_array;
    Alcotest.test_case "print formats" `Quick test_print_formats;
    Alcotest.test_case "global initializers" `Quick test_global_init_values;
    Alcotest.test_case "quicksort" `Quick test_mixed_recursion_and_arrays;
    Alcotest.test_case "FI on trap-prone program" `Quick test_fi_on_trap_prone_program;
  ]
