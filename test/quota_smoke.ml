(* Adversarial-input hardening smoke test (DESIGN.md §13).

   A fault-amplified output loop runs a small campaign under tight,
   deterministic sandbox quotas (absolute output cap + livelock window; no
   wall-clock, so the run is bit-reproducible).  A second program is
   chaos-quarantined (corrupted splice -> MIR verifier).  The campaign is
   killed mid-run by a watchdog, resumed from the journal, and must:

   - complete every non-quarantined cell at full sample size (quota trips
     are Crash outcomes, never harness failures),
   - trip the output quota at least once (counter nonzero),
   - quarantine the chaos cell, short-circuit it on resume, and count it,
   - exclude the quarantined cell from the chi-squared rows,
   - produce a CSV bit-identical to an uninterrupted run (modulo the
     wall-clock timing columns, which are zeroed before comparison).

   Run via:  dune build @quota-smoke *)

module E = Refine_campaign.Experiment
module J = Refine_campaign.Journal
module Csv = Refine_campaign.Csv
module Rep = Refine_campaign.Report
module T = Refine_core.Tool
module Obs = Refine_obs
module M = Obs.Metrics

let fail fmt = Printf.ksprintf (fun s -> print_endline ("[quota-smoke] FAIL: " ^ s); exit 1) fmt

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let counter_total name =
  List.fold_left
    (fun acc (n, _, v) ->
      match v with M.Counter c when n = name -> Int64.add acc c | _ -> acc)
    0L (M.snapshot ())

(* output amplification: a flipped bit in the loop bound or counter makes
   the program print orders of magnitude more than its golden run *)
let amp_src =
  {|
int main() {
  int i;
  int n;
  n = 48;
  for (i = 0; i < n; i = i + 1) { print_int(i); }
  return 0;
}
|}

let programs = [ ("AMP", amp_src) ]
let adv = ("ADV", amp_src)
let tools = [ T.Llfi; T.Refine; T.Pinfi ]
let samples = 24
let seed = 3
let break_mir = { T.break_mir = true; flaky_golden = false }

(* deterministic quotas only: absolute output cap (a few x golden) and a
   livelock window in simulated steps *)
let quotas =
  { T.no_quotas with T.output_bytes = Some 512; livelock_window = Some 65536 }

let zero_timing (c : E.cell) = { c with E.timing = E.zero_timing }

let run_adv ?journal ?chaos () =
  let program, source = adv in
  [
    E.run_cell ?journal ?chaos ~quotas ~samples ~seed T.Refine ~program ~source ();
    E.run_cell ?journal ~quotas ~samples ~seed T.Llfi ~program ~source ();
    E.run_cell ?journal ~quotas ~samples ~seed T.Pinfi ~program ~source ();
  ]

let () =
  Obs.Control.enable ();
  let path = Filename.temp_file "refine_quota_smoke" ".journal" in
  let total = List.length programs * List.length tools * samples in

  (* phase 1: quarantine the chaos cell, then kill the campaign mid-run *)
  let j = J.create path in
  let qcells = run_adv ~journal:j ~chaos:break_mir () in
  (match (List.hd qcells).E.quarantined with
  | Some r when contains r "mir-verifier" -> ()
  | _ -> fail "chaos cell was not quarantined");
  let polls = ref 0 in
  let watchdog () = incr polls; !polls > 6 in
  ignore (E.run_matrix ~journal:j ~watchdog ~quotas ~samples ~seed programs tools);
  Printf.printf "[quota-smoke] interrupted: %d/%d samples checkpointed\n%!" (J.length j) total;
  if J.length j >= total then fail "watchdog never fired, nothing was interrupted";

  (* phase 2: resume — the quarantined cell must short-circuit from the
     journal (no chaos this time), the rest must complete *)
  let j2 = J.create ~resume:true path in
  if J.skipped j2 <> 0 then fail "clean journal reported %d skipped lines" (J.skipped j2);
  let adv_resumed = run_adv ~journal:j2 () in
  (match (List.hd adv_resumed).E.quarantined with
  | Some _ -> ()
  | None -> fail "journaled quarantine did not short-circuit the resume");
  let resumed = E.run_matrix ~journal:j2 ~quotas ~samples ~seed programs tools in
  Printf.printf "[quota-smoke] resumed: %d/%d samples checkpointed\n%!" (J.length j2) total;

  (* phase 3: uninterrupted reference; CSVs must match byte-for-byte once
     the wall-clock timing attribution columns are zeroed *)
  let fresh = E.run_matrix ~quotas ~samples ~seed programs tools in
  let adv_fresh = run_adv ~chaos:break_mir () in
  let csv cells = Csv.to_string (List.map zero_timing cells) in
  if csv (resumed @ adv_resumed) <> csv (fresh @ adv_fresh) then
    fail "resumed CSV differs from uninterrupted run";
  ignore (Csv.of_string (csv (resumed @ adv_resumed)));

  (* every non-quarantined cell resolved every sample: quota trips are
     experimental Crash outcomes, not harness failures *)
  let all = fresh @ adv_fresh in
  List.iter
    (fun (c : E.cell) ->
      if c.E.quarantined = None && E.total c.E.counts <> samples then
        fail "%s/%s resolved %d of %d samples" c.E.program (T.kind_name c.E.tool)
          (E.total c.E.counts) samples)
    all;

  (* the sandbox actually fired, and the quarantine was counted *)
  let trips = counter_total "refine_quota_trips_total" in
  if trips <= 0L then fail "no quota trips recorded under a 512-byte output cap";
  Printf.printf "[quota-smoke] quota trips = %Ld\n%!" trips;
  let quarantined = counter_total "refine_quarantined_cells_total" in
  if quarantined <= 0L then fail "quarantine counter is zero";
  Printf.printf "[quota-smoke] quarantined cells = %Ld\n%!" quarantined;

  (* chi-squared excludes the quarantined cell and the reports flag it *)
  let rows = Rep.chi2_rows all [ "AMP"; "ADV" ] in
  let adv_row = List.find (fun (r : Rep.chi2_row) -> r.Rep.program = "ADV") rows in
  if not (List.mem_assoc "REFINE" adv_row.Rep.quarantined_tools) then
    fail "chi2 row does not exclude the quarantined REFINE cell";
  if not (contains (Rep.table5 rows) "[q]") then fail "table5 lacks the [q] mark";
  if not (contains (String.concat "\n" (Rep.degradation all)) "QUARANTINED") then
    fail "degradation report lacks the QUARANTINED line";

  Sys.remove path;
  print_endline
    "[quota-smoke] PASS: quotas tripped, quarantine journaled + resumed, CSV bit-identical"
