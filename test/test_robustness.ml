(* Robustness tests for the fault-tolerant campaign engine: supervised
   workers, bounded retry, watchdog kills, checkpoint/resume journal and
   ToolError graceful degradation. *)

module P = Refine_support.Prng
module Par = Refine_support.Parallel
module S = Refine_support.Supervisor
module E = Refine_campaign.Experiment
module J = Refine_campaign.Journal
module Rep = Refine_campaign.Report
module T = Refine_core.Tool
module F = Refine_core.Fault

let src =
  {|
int main() {
  int i; float s = 0.0;
  for (i = 0; i < 40; i = i + 1) { s = s + tofloat(i * i) * 0.125; }
  print_float(s);
  return 0;
}
|}

let tmpfile () = Filename.temp_file "refine_journal" ".log"

(* ---- stable seed derivation (replaces Hashtbl.hash) -------------------- *)

let test_fnv1a_pinned () =
  (* FNV-1a 64 offset basis / known vectors, folded to 63 bits; pinned so a
     change in the hash (or a return to Hashtbl.hash) fails loudly *)
  Alcotest.(check int) "fnv1a(\"\")" 860922984064492325 (P.hash_string "");
  Alcotest.(check int) "fnv1a(HPCCG-1.0)" 404067949972785624 (P.hash_string "HPCCG-1.0");
  Alcotest.(check int) "cell seed pinned" 4201135180414618005
    (E.cell_seed ~seed:1 ~program:"tiny" T.Refine);
  Alcotest.(check int) "cell seed pinned (DC/PINFI)" 2999991401370769998
    (E.cell_seed ~seed:20170712 ~program:"DC" T.Pinfi)

(* ---- supervisor: isolation, retry, watchdog ---------------------------- *)

let test_retry_then_success () =
  let tries = Array.make 4 0 in
  let out =
    S.run ~policy:{ S.default_policy with S.max_retries = 3 } ~domains:1 4
      (fun ~attempt i ->
        tries.(i) <- tries.(i) + 1;
        if i = 2 && attempt < 2 then failwith "flaky";
        i * 10)
  in
  (match out.(2) with
  | S.Done (v, attempts) ->
    Alcotest.(check int) "value" 20 v;
    Alcotest.(check int) "attempts used" 3 attempts
  | _ -> Alcotest.fail "task 2 should succeed after retries");
  Alcotest.(check int) "task 2 ran 3 times" 3 tries.(2);
  Alcotest.(check int) "task 0 ran once" 1 tries.(0)

let test_retry_exhaustion () =
  let out =
    S.run ~policy:{ S.default_policy with S.max_retries = 2 } ~domains:2 6
      (fun ~attempt:_ i -> if i = 3 then failwith "always broken" else i)
  in
  (match out.(3) with
  | S.Failed f ->
    Alcotest.(check int) "attempts" 3 f.S.attempts;
    Alcotest.(check bool) "error captured" true
      (match f.S.exn with Failure m -> m = "always broken" | _ -> false)
  | _ -> Alcotest.fail "task 3 should exhaust retries");
  (* sibling tasks are unaffected: one failure no longer aborts the pool *)
  List.iter
    (fun i ->
      match out.(i) with
      | S.Done (v, 1) -> Alcotest.(check int) "sibling done" i v
      | _ -> Alcotest.fail (Printf.sprintf "task %d should be Done" i))
    [ 0; 1; 2; 4; 5 ];
  Alcotest.(check int) "one aggregated failure" 1 (List.length (S.failures out))

let test_watchdog_skips_remaining () =
  let polls = ref 0 in
  let out =
    S.run ~domains:1 ~watchdog:(fun () -> incr polls; !polls > 3) 10
      (fun ~attempt:_ i -> i)
  in
  let done_n =
    Array.fold_left (fun n -> function S.Done _ -> n + 1 | _ -> n) 0 out
  in
  let skipped_n =
    Array.fold_left (fun n -> function S.Skipped -> n + 1 | _ -> n) 0 out
  in
  Alcotest.(check int) "watchdog stopped after 3 tasks" 3 done_n;
  Alcotest.(check int) "rest skipped, not failed" 7 skipped_n

let test_cancelled_inflight () =
  (* a task that polls the token aborts mid-flight and lands as Skipped *)
  let token = S.Cancel.create () in
  let out =
    S.run ~token ~domains:1 3 (fun ~attempt:_ i ->
        if i = 1 then begin
          S.Cancel.cancel ~reason:"test kill" token;
          S.check token
        end;
        i)
  in
  (match (out.(0), out.(1), out.(2)) with
  | S.Done (0, 1), S.Skipped, S.Skipped -> ()
  | _ -> Alcotest.fail "expected Done/Skipped/Skipped");
  Alcotest.(check (option string)) "reason kept" (Some "test kill") (S.Cancel.reason token)

(* ---- parallel: unified error surface, cooperative cancellation --------- *)

let test_init_first_element_supervised () =
  (* an exception in f 0 used to escape raw (f 0 ran on the caller); it must
     arrive wrapped like every other index *)
  Alcotest.(check bool) "f 0 failure wrapped" true
    (try
       ignore (Par.init ~domains:2 4 (fun i -> if i = 0 then failwith "boom0" else i));
       false
     with Par.Worker_failure (Failure m) -> m = "boom0")

let test_parallel_external_cancel () =
  let token = S.Cancel.create () in
  let ran = Atomic.make 0 in
  Alcotest.(check bool) "external cancel raises Cancelled" true
    (try
       ignore
         (Par.init ~token ~domains:1 100 (fun i ->
              ignore (Atomic.fetch_and_add ran 1);
              if i = 4 then S.Cancel.cancel ~reason:"stop" token;
              i));
       false
     with S.Cancelled _ -> true);
  (* sibling tasks after the cancellation point were never claimed *)
  Alcotest.(check bool) "stopped early" true (Atomic.get ran < 100)

(* ---- per-sample watchdog (modeled-cost budget) ------------------------- *)

let prepared = lazy (T.prepare T.Refine src)

let test_sample_budget_exceeded () =
  let p = Lazy.force prepared in
  let rng = P.create 7 in
  Alcotest.(check bool) "tiny budget kills the sample" true
    (try
       ignore (T.run_injection ~cost_cap:1L p (P.split rng));
       false
     with T.Sample_budget_exceeded _ -> true);
  (* a cap at/above the paper's 10x timeout is inert: never raises *)
  let r2 = P.create 7 in
  ignore (T.run_injection ~cost_cap:Int64.max_int p (P.split r2))

let test_watchdog_expiry_degrades_to_tool_error () =
  let c =
    E.run_cell ~domains:2 ~retries:1 ~cost_cap:1L ~samples:8 ~seed:5 T.Refine
      ~program:"tiny" ~source:src ()
  in
  Alcotest.(check int) "all samples are tool errors" 8 c.E.counts.E.tool_error;
  Alcotest.(check int) "contingency n is zero" 0 (E.total c.E.counts);
  Alcotest.(check int) "attempted includes tool errors" 8 (E.attempted c.E.counts);
  Alcotest.(check (array int)) "chi2 row excludes tool errors" [| 0; 0; 0 |] (E.row c);
  Alcotest.(check int) "failures aggregated" 8 (List.length c.E.failures);
  List.iter
    (fun f -> Alcotest.(check int) "retry budget honoured" 2 f.S.attempts)
    c.E.failures;
  (* watchdog kills still bill their burned budget to campaign time *)
  Alcotest.(check bool) "burned cost accounted" true (c.E.injection_cost > 0L);
  match Rep.degradation [ c ] with
  | [ w ] ->
    Alcotest.(check bool) "warning names the cell" true
      (let has s sub =
         let n = String.length s and m = String.length sub in
         let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
         go 0
       in
       has w "tiny" && has w "margin of error")
  | ws -> Alcotest.fail (Printf.sprintf "expected 1 warning, got %d" (List.length ws))

(* ---- graceful degradation across the matrix ---------------------------- *)

let test_matrix_survives_broken_cell () =
  (* a program whose profiling run exits nonzero: prepare fails, the cell
     degrades, the rest of the matrix completes *)
  let bad = "int main() { return 1; }" in
  let cells =
    E.run_matrix ~domains:2 ~samples:10 ~seed:3
      [ ("bad", bad); ("tiny", src) ]
      [ T.Refine; T.Pinfi ]
  in
  Alcotest.(check int) "all four cells present" 4 (List.length cells);
  let b = E.find_cell cells ~program:"bad" ~tool:T.Refine in
  Alcotest.(check int) "broken cell fully degraded" 10 b.E.counts.E.tool_error;
  Alcotest.(check bool) "prepare failure recorded" true
    (match b.E.failures with [ { S.index = -1; _ } ] -> true | _ -> false);
  let g = E.find_cell cells ~program:"tiny" ~tool:T.Pinfi in
  Alcotest.(check int) "healthy cell complete" 10 (E.total g.E.counts);
  Alcotest.(check int) "healthy cell has no tool errors" 0 g.E.counts.E.tool_error;
  Alcotest.(check int) "two warnings (bad cells only)" 2
    (List.length (Rep.degradation cells))

let test_reports_survive_degraded_matrix () =
  (* every sample killed by the cost cap: the CI, chi-squared and timing
     reports must render placeholders / trivial verdicts, not abort *)
  let cells =
    E.run_matrix ~domains:2 ~retries:0 ~cost_cap:1L ~samples:4 ~seed:2
      [ ("tiny", src) ] Rep.tools
  in
  List.iter
    (fun (c : E.cell) ->
      Alcotest.(check int) "cell fully degraded" 4 c.E.counts.E.tool_error)
    cells;
  let fig4 = Rep.figure4_program cells "tiny" in
  Alcotest.(check bool) "figure 4 renders placeholder" true
    (String.length fig4 > 0
    && (let n = String.length fig4 in
        let rec go i = i + 2 <= n && (String.sub fig4 i 2 = "--" || go (i + 1)) in
        go 0));
  (match Rep.chi2_rows cells [ "tiny" ] with
  | [ r ] ->
    Alcotest.(check bool) "empty-vs-empty chi2 is the trivial verdict" false
      r.Rep.refine_vs_pinfi.Refine_stats.Chi2.significant;
    Alcotest.(check (float 1e-9)) "p-value is 1" 1.0
      r.Rep.refine_vs_pinfi.Refine_stats.Chi2.p_value
  | rs -> Alcotest.fail (Printf.sprintf "expected 1 chi2 row, got %d" (List.length rs)));
  ignore (Rep.table5 (Rep.chi2_rows cells [ "tiny" ]));
  Alcotest.(check int) "one warning per cell" (List.length Rep.tools)
    (List.length (Rep.degradation cells))

(* ---- journal ----------------------------------------------------------- *)

let entry sample outcome cost =
  { J.program = "p"; tool = "REFINE"; model = "reg"; sample; outcome; cost; attempts = 1 }

let test_journal_roundtrip () =
  let path = tmpfile () in
  let j = J.create path in
  J.record j (entry 0 F.Crash 100L);
  J.record j (entry 1 F.Benign 200L);
  J.record j (entry 2 F.Tool_error 5L);
  let j2 = J.create ~resume:true path in
  Alcotest.(check int) "entries survive reopen" 3 (J.length j2);
  let tbl = J.completed j2 ~program:"p" ~tool:"REFINE" in
  Alcotest.(check int) "completed keyed by sample" 3 (Hashtbl.length tbl);
  Alcotest.(check bool) "outcome preserved" true
    ((Hashtbl.find tbl 2).J.outcome = F.Tool_error);
  Alcotest.(check int64) "cost preserved" 200L (Hashtbl.find tbl 1).J.cost;
  let j3 = J.create path in
  Alcotest.(check int) "non-resume truncates" 0 (J.length j3);
  Sys.remove path

let test_journal_skips_garbage () =
  let path = tmpfile () in
  let oc = open_out path in
  output_string oc "# refine-journal v1\np\tREFINE\t0\tcrash\t42\t1\nnot a valid line\n";
  close_out oc;
  let j = J.create ~resume:true path in
  Alcotest.(check int) "good line kept, torn line dropped" 1 (J.length j);
  Sys.remove path

(* ---- kill / resume determinism ----------------------------------------- *)

let counts_equal (a : E.cell) (b : E.cell) =
  a.E.counts = b.E.counts && a.E.injection_cost = b.E.injection_cost

let test_watchdog_kill_then_resume () =
  let samples = 12 and seed = 3 in
  let run ?journal ?watchdog ~domains () =
    E.run_cell ~domains ?journal ?watchdog ~samples ~seed T.Pinfi ~program:"tiny"
      ~source:src ()
  in
  let path = tmpfile () in
  let j = J.create path in
  let polls = ref 0 in
  let partial = run ~journal:j ~watchdog:(fun () -> incr polls; !polls > 5) ~domains:2 () in
  Alcotest.(check bool) "interrupted run is partial" true
    (E.attempted partial.E.counts < samples);
  let j2 = J.create ~resume:true path in
  let resumed = run ~journal:j2 ~domains:2 () in
  let fresh = run ~domains:1 () in
  Alcotest.(check bool) "resume == uninterrupted (counts + cost)" true
    (counts_equal resumed fresh);
  Sys.remove path

let prop_resume_deterministic =
  QCheck.Test.make ~name:"resume from any k-sample prefix is bit-identical" ~count:8
    QCheck.(triple (int_bound 1000) (int_bound 9) (int_range 1 3))
    (fun (seed, k, domains) ->
      let samples = 10 in
      let path_full = tmpfile () and path_part = tmpfile () in
      let j_full = J.create path_full in
      let full =
        E.run_cell ~domains ~journal:j_full ~samples ~seed T.Refine ~program:"tiny"
          ~source:src ()
      in
      (* simulate a crash after k checkpoints: keep only a k-entry prefix *)
      let kept = List.filteri (fun i _ -> i < k) (J.entries j_full) in
      let j_part = J.create path_part in
      List.iter (J.record j_part) kept;
      let j_resumed = J.create ~resume:true path_part in
      let resumed =
        E.run_cell ~domains:1 ~journal:j_resumed ~samples ~seed T.Refine ~program:"tiny"
          ~source:src ()
      in
      Sys.remove path_full;
      Sys.remove path_part;
      counts_equal full resumed)

let tests =
  [
    Alcotest.test_case "stable seed pinned" `Quick test_fnv1a_pinned;
    Alcotest.test_case "retry then success" `Quick test_retry_then_success;
    Alcotest.test_case "retry exhaustion" `Quick test_retry_exhaustion;
    Alcotest.test_case "watchdog skips remaining" `Quick test_watchdog_skips_remaining;
    Alcotest.test_case "in-flight cancellation" `Quick test_cancelled_inflight;
    Alcotest.test_case "init f0 supervised" `Quick test_init_first_element_supervised;
    Alcotest.test_case "parallel external cancel" `Quick test_parallel_external_cancel;
    Alcotest.test_case "sample budget watchdog" `Quick test_sample_budget_exceeded;
    Alcotest.test_case "watchdog -> ToolError" `Quick test_watchdog_expiry_degrades_to_tool_error;
    Alcotest.test_case "matrix survives broken cell" `Quick test_matrix_survives_broken_cell;
    Alcotest.test_case "reports survive degraded matrix" `Quick
      test_reports_survive_degraded_matrix;
    Alcotest.test_case "journal roundtrip" `Quick test_journal_roundtrip;
    Alcotest.test_case "journal skips garbage" `Quick test_journal_skips_garbage;
    Alcotest.test_case "kill + resume determinism" `Quick test_watchdog_kill_then_resume;
    QCheck_alcotest.to_alcotest prop_resume_deterministic;
  ]
