(* Tests for the cross-layer fault models (DESIGN.md §18): model string
   forms, multi-bit position draws, snapshot-safe mutation + reset
   restoration, Instr_image decode traps classifying as Crash, per-model
   campaign determinism across domain counts, legacy CSV/journal
   compatibility and the per-model injection metric. *)

module F = Refine_core.Fault
module T = Refine_core.Tool
module E = Refine_campaign.Experiment
module J = Refine_campaign.Journal
module Csv = Refine_campaign.Csv
module Rep = Refine_campaign.Report
module X = Refine_machine.Exec
module B = Refine_support.Bitops
module P = Refine_support.Prng
module Obs = Refine_obs
module Mx = Obs.Metrics

let src =
  {|
int main() {
  int i; float s = 0.0;
  for (i = 0; i < 40; i = i + 1) { s = s + tofloat(i * i) * 0.125; }
  print_float(s);
  return 0;
}
|}

let all_models =
  [
    F.Reg_bit;
    F.Mem_cell;
    F.Instr_image;
    F.Multi_bit { bits = 3; burst = false };
    F.Multi_bit { bits = 4; burst = true };
  ]

(* ---- model string forms ---- *)

let test_model_strings () =
  List.iter
    (fun m ->
      let s = F.string_of_model m in
      Alcotest.(check bool) (s ^ " round-trips") true (F.model_of_string s = m))
    all_models;
  Alcotest.(check string) "reg form" "reg" (F.string_of_model F.Reg_bit);
  Alcotest.(check string) "burst form" "burst:4"
    (F.string_of_model (F.Multi_bit { bits = 4; burst = true }));
  Alcotest.(check int) "multi bits" 3 (F.model_bits (F.Multi_bit { bits = 3; burst = false }));
  Alcotest.(check int) "instr bits" 1 (F.model_bits F.Instr_image);
  List.iter
    (fun s ->
      match F.model_of_string s with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "accepted invalid model %S" s)
    [ "bogus"; "multi:0"; "multi:65"; "burst:"; "multi:3:4"; "" ]

(* ---- multi-bit position draws ---- *)

let gen_draw = QCheck.(triple (int_range 1 64) (int_range 1 64) bool)

let prop_draw_bits_shape =
  QCheck.Test.make ~name:"draw_bits: k distinct sorted positions below width" ~count:300 gen_draw
    (fun (width, bits, burst) ->
      let rng = P.create ((width * 67) + (bits * 5) + Bool.to_int burst) in
      let l = B.draw_bits (P.int rng) ~width ~bits ~burst in
      List.length l = min bits width
      && List.for_all (fun b -> b >= 0 && b < width) l
      && List.sort_uniq compare l = l)

let prop_draw_bits_deterministic =
  QCheck.Test.make ~name:"draw_bits: pure function of the PRNG state" ~count:300 gen_draw
    (fun (width, bits, burst) ->
      let seed = (width * 131) + bits in
      let a = B.draw_bits (P.int (P.create seed)) ~width ~bits ~burst in
      let b = B.draw_bits (P.int (P.create seed)) ~width ~bits ~burst in
      a = b)

let prop_draw_bits_burst_contiguous =
  QCheck.Test.make ~name:"draw_bits: burst positions are contiguous" ~count:300 gen_draw
    (fun (width, bits, _) ->
      let rng = P.create ((width * 257) + bits) in
      let l = B.draw_bits (P.int rng) ~width ~bits ~burst:true in
      match l with
      | [] -> false
      | first :: rest ->
        fst (List.fold_left (fun (ok, prev) b -> (ok && b = prev + 1, b)) (true, first) rest))

(* ---- snapshot-safe mutation + reset restoration ---- *)

let prepared_tiny = lazy (T.prepare T.Pinfi src)

let prop_mutate_then_reset_pristine =
  QCheck.Test.make ~name:"model mutations never outlive reset or touch the snapshot" ~count:30
    QCheck.(triple (int_range 0 100_000) (int_range 0 7) bool)
    (fun (off, bit, legal) ->
      let p = Lazy.force prepared_tiny in
      let module L = Refine_backend.Layout in
      let code_before = Array.copy p.T.image.L.code in
      let fresh = X.create_from_snapshot p.T.snap in
      let eng = X.create_from_snapshot p.T.snap in
      let addr = Refine_ir.Memlayout.null_guard + (off mod 4096) in
      X.flip_mem_bit eng ~addr ~bit;
      let pc = p.T.image.L.entry + (off mod 8) in
      X.set_overlay eng ~pc (if legal then Some p.T.image.L.code.(p.T.image.L.entry) else None);
      eng.X.fi_mask <- 0xF0L;
      (* the mutation is engine-local: the shared code image is untouched
         and the sibling engine's memory is unaffected *)
      Array.iteri (fun i instr -> assert (p.T.image.L.code.(i) == instr)) code_before;
      assert (not (Bytes.equal eng.X.mem fresh.X.mem));
      assert (Bytes.equal fresh.X.mem (X.create_from_snapshot p.T.snap).X.mem);
      X.reset eng;
      Bytes.equal eng.X.mem fresh.X.mem
      && eng.X.regs = fresh.X.regs
      && eng.X.pc = fresh.X.pc
      && eng.X.fi_mask = 0L
      && eng.X.overlay_pc = -1
      && eng.X.overlay_instr = None)

(* ---- Instr_image decode trap = Crash, never a harness error ---- *)

let test_illegal_instr_classifies_crash () =
  let p = Lazy.force prepared_tiny in
  let eng = X.create_from_snapshot p.T.snap in
  X.set_overlay eng ~pc:eng.X.pc None;
  let r = X.run eng in
  (match r.X.status with
  | X.Trapped (X.Illegal_instr _) -> ()
  | s -> Alcotest.failf "expected Illegal_instr trap, got %s" (match s with
      | X.Trapped t -> X.string_of_trap t
      | X.Exited n -> Printf.sprintf "exit %d" n
      | X.Running -> "running"
      | X.Timed_out -> "timeout"));
  Alcotest.(check bool) "decode trap classifies as Crash" true
    (F.classify p.T.profile r = F.Crash)

let test_instr_image_no_harness_errors () =
  let cells = E.run_matrix ~model:F.Instr_image ~samples:15 ~seed:7 [ ("tiny", src) ] Rep.tools in
  Alcotest.(check int) "3 cells" 3 (List.length cells);
  List.iter
    (fun (c : E.cell) ->
      Alcotest.(check bool) "model stamped on cell" true (c.E.model = F.Instr_image);
      if c.E.quarantined = None then
        Alcotest.(check int)
          ("no tool_error under " ^ T.kind_name c.E.tool)
          0 c.E.counts.E.tool_error)
    cells

(* ---- per-model determinism across domain counts ---- *)

let test_model_domains_deterministic () =
  List.iter
    (fun model ->
      let run domains =
        E.run_cell ~domains ~model ~samples:16 ~seed:11 T.Refine ~program:"tiny" ~source:src ()
      in
      let a = run 1 and b = run 4 in
      Alcotest.(check bool)
        (F.string_of_model model ^ ": domains 1 = domains 4")
        true
        (a.E.counts = b.E.counts && a.E.injection_cost = b.E.injection_cost))
    [ F.Mem_cell; F.Instr_image; F.Multi_bit { bits = 3; burst = false } ]

let test_cell_seed_model_separation () =
  let base = E.cell_seed ~seed:42 ~program:"EP" T.Refine in
  Alcotest.(check int) "explicit reg = default" base
    (E.cell_seed ~model:F.Reg_bit ~seed:42 ~program:"EP" T.Refine);
  let seeds =
    List.map (fun m -> E.cell_seed ~model:m ~seed:42 ~program:"EP" T.Refine) all_models
  in
  Alcotest.(check int) "models draw from distinct streams" (List.length all_models)
    (List.length (List.sort_uniq compare seeds))

(* ---- CSV: legacy fixture + per-model round-trip ---- *)

let test_csv_legacy_fixture () =
  let cells = Csv.load "fixtures/legacy_cells.csv" in
  Alcotest.(check int) "3 cells" 3 (List.length cells);
  List.iter
    (fun (c : E.cell) ->
      Alcotest.(check bool) "legacy rows load as Reg_bit" true (c.E.model = F.Reg_bit))
    cells;
  let ep = List.hd cells in
  Alcotest.(check int) "crash count survives" 30 ep.E.counts.E.crash;
  Alcotest.(check int) "benign count survives" 50 ep.E.counts.E.benign;
  let dc = List.nth cells 2 in
  Alcotest.(check bool) "quarantine survives" true (dc.E.quarantined <> None)

let test_csv_model_round_trip () =
  let cells =
    List.map
      (fun model -> E.run_cell ~model ~samples:6 ~seed:3 T.Refine ~program:"tiny" ~source:src ())
      all_models
  in
  let back = Csv.of_string (Csv.to_string cells) in
  Alcotest.(check int) "same cell count" (List.length cells) (List.length back);
  List.iter2
    (fun (a : E.cell) (b : E.cell) ->
      Alcotest.(check bool)
        (F.string_of_model a.E.model ^ " round-trips")
        true
        (a.E.model = b.E.model && a.E.counts = b.E.counts && a.E.samples = b.E.samples
       && a.E.injection_cost = b.E.injection_cost))
    cells back

(* ---- journal: legacy fixture + v2 round-trip ---- *)

let with_fixture_copy fixture f =
  let tmp = Filename.temp_file "refine_fm" ".journal" in
  let contents = In_channel.with_open_bin fixture In_channel.input_all in
  Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc contents);
  Fun.protect ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ()) (fun () -> f tmp)

let test_journal_legacy_fixture () =
  (* [J.create ~resume:true] rewrites the file canonically, so load a copy *)
  with_fixture_copy "fixtures/legacy.journal" (fun tmp ->
      let j = J.create ~resume:true tmp in
      Alcotest.(check int) "no skipped lines" 0 (J.skipped j);
      Alcotest.(check int) "4 entries" 4 (J.length j);
      List.iter
        (fun (e : J.entry) ->
          Alcotest.(check string) "pre-model entries default to reg" "reg" e.J.model)
        (J.entries j);
      Alcotest.(check bool) "quarantine survives" true
        (J.quarantine_reason j ~program:"DC" ~tool:"LLFI" <> None);
      Alcotest.(check int) "default model finds legacy samples" 3
        (Hashtbl.length (J.completed j ~program:"EP" ~tool:"REFINE"));
      Alcotest.(check int) "non-default model finds none" 0
        (Hashtbl.length (J.completed ~model:"mem" j ~program:"EP" ~tool:"REFINE"));
      J.close j)

let test_journal_model_round_trip () =
  with_fixture_copy "fixtures/legacy.journal" (fun tmp ->
      let j = J.create tmp in
      J.record j
        {
          J.program = "EP";
          tool = "REFINE";
          model = "multi:3";
          sample = 0;
          outcome = F.Soc;
          cost = 99L;
          attempts = 1;
        };
      J.close j;
      let j2 = J.create ~resume:true tmp in
      Alcotest.(check int) "entry survives" 1 (J.length j2);
      let e = List.hd (J.entries j2) in
      Alcotest.(check string) "model survives" "multi:3" e.J.model;
      Alcotest.(check int) "same-model lookup finds it" 1
        (Hashtbl.length (J.completed ~model:"multi:3" j2 ~program:"EP" ~tool:"REFINE"));
      Alcotest.(check int) "default lookup skips it" 0
        (Hashtbl.length (J.completed j2 ~program:"EP" ~tool:"REFINE"));
      J.close j2)

(* ---- per-model injection metric + lint ---- *)

let test_injection_metric () =
  Obs.Control.enable ();
  Mx.reset ();
  Fun.protect
    ~finally:(fun () ->
      Mx.reset ();
      Obs.Control.disable ())
    (fun () ->
      let _ = E.run_cell ~model:F.Mem_cell ~samples:5 ~seed:2 T.Refine ~program:"tiny" ~source:src () in
      (match Mx.find "refine_injections_total" [ ("tool", "REFINE"); ("model", "mem") ] with
      | Some (Mx.Counter n) ->
        Alcotest.(check bool) "every sample counted" true (Int64.to_int n >= 5)
      | _ -> Alcotest.fail "refine_injections_total{tool,model} not registered");
      Alcotest.(check (list string)) "promlint clean" [] (Promlint.lint (Mx.dump ())))

let qcheck = QCheck_alcotest.to_alcotest

let tests =
  [
    Alcotest.test_case "model strings round-trip, invalid forms rejected" `Quick
      test_model_strings;
    qcheck prop_draw_bits_shape;
    qcheck prop_draw_bits_deterministic;
    qcheck prop_draw_bits_burst_contiguous;
    qcheck prop_mutate_then_reset_pristine;
    Alcotest.test_case "Illegal_instr trap classifies as Crash" `Quick
      test_illegal_instr_classifies_crash;
    Alcotest.test_case "Instr_image campaign: decode traps never harness errors" `Slow
      test_instr_image_no_harness_errors;
    Alcotest.test_case "per-model domains 1 = domains 4" `Slow test_model_domains_deterministic;
    Alcotest.test_case "cell_seed separates models, keeps reg default" `Quick
      test_cell_seed_model_separation;
    Alcotest.test_case "legacy 17-column CSV loads as Reg_bit" `Quick test_csv_legacy_fixture;
    Alcotest.test_case "CSV round-trips every model" `Slow test_csv_model_round_trip;
    Alcotest.test_case "pre-model journal loads with model=reg" `Quick
      test_journal_legacy_fixture;
    Alcotest.test_case "journal v2 round-trips the model column" `Quick
      test_journal_model_round_trip;
    Alcotest.test_case "refine_injections_total carries the model label" `Slow
      test_injection_metric;
  ]
