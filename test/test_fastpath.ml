(* Fast-path equivalence tests (DESIGN.md §14).

   The executor fast path — snapshot-reset engine reuse, unboxed int
   counters, pre-resolved extern dispatch — must be invisible in results:
   a reset engine is bit-identical to a fresh one, a fixed-seed campaign
   produces the same outcome table with the fast path on or off, and the
   per-instruction execute path allocates nothing when profiling is off. *)

module M = Refine_mir.Minstr
module R = Refine_mir.Reg
module MF = Refine_mir.Mfunc
module E = Refine_machine.Exec
module L = Refine_backend.Layout
module P = Refine_support.Prng
module T = Refine_core.Tool
module Ex = Refine_campaign.Experiment

let image_of ?(globals = []) instrs =
  let mf = MF.create "main" in
  List.iteri
    (fun k i ->
      let b = MF.add_block mf k in
      b.MF.code <- [ i ])
    instrs;
  L.build ~globals [ mf ]

let pp_result fmt (r : E.result) =
  Format.fprintf fmt "status=%s out=%S steps=%Ld cost=%Ld trunc=%b"
    (match r.E.status with
    | E.Running -> "running"
    | E.Exited c -> Printf.sprintf "exit %d" c
    | E.Trapped tr -> "trap: " ^ E.string_of_trap tr
    | E.Timed_out -> "timeout")
    r.E.output r.E.steps r.E.cost r.E.truncated

let result_t = Alcotest.testable pp_result ( = )

(* --- engine-level differential: fresh vs snapshot vs reset ------------- *)

let compile_image seed =
  let m = Refine_minic.Frontend.compile (Test_semantics.gen_program seed) in
  Refine_passes.Pipeline.optimize Refine_passes.Pipeline.O2 m;
  Refine_passes.Pipeline.compile m

(* Deterministic single-bit register fault at a dynamic instruction
   instance, via the DBI hook — the same fault armed on every engine
   under comparison, so any state leaking through [reset] diverges. *)
let arm_fault eng ~target ~reg ~bit =
  let count = ref 0 in
  eng.E.post_hook <-
    Some
      (fun (e : E.t) _ _ ->
        incr count;
        if !count = target then begin
          e.E.regs.(reg) <- Refine_support.Bitops.flip_bit e.E.regs.(reg) bit;
          e.E.post_hook <- None;
          e.E.hook_cost <- 0
        end);
  eng.E.hook_cost <- 3

let run_one ?fault eng =
  (match fault with Some (target, reg, bit) -> arm_fault eng ~target ~reg ~bit | None -> ());
  E.run ~max_cost:20_000_000L eng

let prop_snapshot_reset_identical =
  QCheck.Test.make ~name:"snapshot/reset engines bit-identical to fresh create" ~count:12
    QCheck.(int_range 1 5000)
    (fun seed ->
      let image = compile_image seed in
      let rng = P.create (seed * 7 + 1) in
      let fault = (1 + P.int rng 4000, R.gpr (P.int rng 6), P.int rng 64) in
      let snap = E.snapshot image in
      let reused = E.create_from_snapshot snap in
      let check ?fault what =
        let r_fresh = run_one ?fault (E.create image) in
        let r_clone = run_one ?fault (E.create_from_snapshot snap) in
        E.reset reused;
        let r_reset = run_one ?fault reused in
        Alcotest.check result_t (what ^ ": fresh = snapshot clone") r_fresh r_clone;
        Alcotest.check result_t (what ^ ": fresh = reset reuse") r_fresh r_reset
      in
      check "clean";
      check ~fault "faulted";
      (* a second faulted pass over the same reused engine: reset must also
         erase the fault's damage, not just clean-run state *)
      check ~fault "faulted again";
      true)

(* --- snapshot restores globals, heap, output --------------------------- *)

let test_reset_restores_state () =
  let m =
    Refine_minic.Frontend.compile
      "global int a = 3; int main() { a = a + 39; print_int(a); return 0; }"
  in
  Refine_passes.Pipeline.optimize Refine_passes.Pipeline.O2 m;
  let image = Refine_passes.Pipeline.compile m in
  let snap = E.snapshot image in
  let eng = E.create_from_snapshot snap in
  let r1 = E.run eng in
  E.reset eng;
  let r2 = E.run eng in
  Alcotest.(check string) "first run" "42\n" r1.E.output;
  Alcotest.check result_t "global mutation erased by reset" r1 r2

let test_reset_requires_snapshot () =
  let eng = E.create (image_of [ M.Mhalt ]) in
  Alcotest.check_raises "reset on create-engine"
    (Invalid_argument "Exec.reset: engine was not created from a snapshot") (fun () ->
      E.reset eng)

(* --- pre-resolved extern dispatch -------------------------------------- *)

let test_unknown_extern_dead_path () =
  (* an unresolvable extern on a never-executed path must not trap: slots
     are resolved to trap-on-invoke handlers, not resolution-time errors *)
  let r =
    E.run
      (E.create
         (image_of
            [ M.Mjmp 2; M.Mcallext "mystery_fn"; M.Mmov (R.ret_gpr, M.Imm 0L); M.Mhalt ]))
  in
  (match r.E.status with
  | E.Exited 0 -> ()
  | _ -> Alcotest.fail (Format.asprintf "expected clean exit, got %a" pp_result r));
  let r2 = E.run (E.create (image_of [ M.Mcallext "mystery_fn"; M.Mhalt ])) in
  match r2.E.status with
  | E.Trapped (E.Extern_fault msg) ->
    Alcotest.(check bool) "names the extern" true
      (String.length msg >= 10 && String.sub msg (String.length msg - 10) 10 = "mystery_fn")
  | _ -> Alcotest.fail "expected Extern_fault on the live path"

let test_reset_rebinds_handlers () =
  let image =
    image_of
      [
        M.Mmov (R.gpr 1, M.Imm 5L);
        M.Mcallext "print_int";
        M.Mmov (R.ret_gpr, M.Imm 0L);
        M.Mhalt;
      ]
  in
  let snap = E.snapshot image in
  let hits = ref 0 in
  let eng = E.create_from_snapshot ~ext_extra:[ ("print_int", 2, fun _ -> incr hits) ] snap in
  let r1 = E.run eng in
  Alcotest.(check int) "custom handler hit" 1 !hits;
  Alcotest.(check string) "custom handler suppressed output" "" r1.E.output;
  (* 4 instructions + custom cost 2 *)
  Alcotest.(check int64) "custom cost charged" 6L r1.E.cost;
  E.reset eng;
  (* no ext_extra: the builtin print_int must be rebound *)
  let r2 = E.run eng in
  Alcotest.(check string) "builtin rebound after reset" "5\n" r2.E.output;
  Alcotest.(check int64) "builtin cost charged"
    (Int64.of_int (4 + E.ext_call_cost))
    r2.E.cost

(* --- fixed-seed campaign equality: fast path vs legacy path ------------ *)

let src_int =
  "int main() { int i; int s = 0; for (i = 0; i < 40; i = i + 1) { s = s + i * 3; } \
   print_int(s); return 0; }"

let src_float =
  "global float acc[4]; int main() { int i; float x = 1.5; for (i = 0; i < 30; i = i + 1) { x \
   = x * 1.01 + 0.1; acc[i % 4] = x; } print_float(x); return 0; }"

let matrix_summary cells =
  String.concat "; "
    (List.map
       (fun (c : Ex.cell) ->
         Printf.sprintf "%s/%s crash=%d soc=%d benign=%d err=%d cost=%Ld" c.Ex.program
           (T.kind_name c.Ex.tool) c.Ex.counts.Ex.crash c.Ex.counts.Ex.soc c.Ex.counts.Ex.benign
           c.Ex.counts.Ex.tool_error c.Ex.injection_cost)
       cells)

let test_campaign_equality () =
  let programs = [ ("ints", src_int); ("floats", src_float) ] in
  let tools = [ T.Refine; T.Pinfi ] in
  let run_matrix () =
    matrix_summary (Ex.run_matrix ~domains:2 ~samples:30 ~seed:7 programs tools)
  in
  Fun.protect
    ~finally:(fun () -> T.use_fast_path := true)
    (fun () ->
      T.use_fast_path := false;
      let legacy = run_matrix () in
      T.use_fast_path := true;
      let fast = run_matrix () in
      Alcotest.(check string) "outcome table bit-identical" legacy fast)

(* --- per-instruction path is allocation-free with profiling off --------- *)

let test_zero_alloc_hot_path () =
  let image =
    image_of
      [
        M.Mmov (R.gpr 1, M.Imm 7L);
        M.Mmov (R.gpr 3, M.Imm 8192L);
        M.Mcmp (R.gpr 1, M.Imm 0L) (* pc 2: loop head *);
        M.Mjcc (M.CEq, 8) (* never taken *);
        M.Mstore (R.gpr 1, R.gpr 3, 0);
        M.Msetcc (M.CNe, R.gpr 2);
        M.Mmov (R.gpr 4, M.Reg (R.gpr 2));
        M.Mjmp 2;
        M.Mhalt;
      ]
  in
  let eng = E.create image in
  let steps n = for _ = 1 to n do E.step eng done in
  steps 10_000 (* warm-up *);
  let measure n =
    let w0 = Gc.minor_words () in
    steps n;
    Gc.minor_words () -. w0
  in
  (* any per-instruction allocation makes the delta scale with the step
     count; per-call constants (the measurement itself) cancel *)
  let d_small = measure 50_000 in
  let d_large = measure 200_000 in
  Alcotest.(check (float 0.0)) "minor words do not scale with steps" d_small d_large;
  Alcotest.(check bool) "still running" true (eng.E.status = E.Running)

let qcheck = QCheck_alcotest.to_alcotest

let tests =
  [
    qcheck prop_snapshot_reset_identical;
    Alcotest.test_case "reset restores globals/heap/output" `Quick test_reset_restores_state;
    Alcotest.test_case "reset requires a snapshot engine" `Quick test_reset_requires_snapshot;
    Alcotest.test_case "unknown extern traps at call, not resolution" `Quick
      test_unknown_extern_dead_path;
    Alcotest.test_case "reset rebinds extern handlers" `Quick test_reset_rebinds_handlers;
    Alcotest.test_case "fixed-seed campaign: fast path = legacy path" `Slow
      test_campaign_equality;
    Alcotest.test_case "hot path allocation-free with profiling off" `Quick
      test_zero_alloc_hot_path;
  ]
