(* Test-suite entry point: one alcotest run over every module's cases. *)

(* must run before alcotest touches argv: when the shard coordinator
   re-execs this binary as a worker, serve frames and exit instead *)
let () = Refine_campaign.Worker.maybe_exec ()

let () =
  Alcotest.run "refine"
    [
      ("support", Test_support.tests);
      ("obs", Test_obs.tests);
      ("stats", Test_stats.tests);
      ("frontend", Test_frontend.tests);
      ("ir", Test_ir.tests);
      ("passes", Test_passes.tests);
      ("pipeline", Test_pipeline.tests);
      ("backend", Test_backend.tests);
      ("machine", Test_machine.tests);
      ("fastpath", Test_fastpath.tests);
      ("decode", Test_decode.tests);
      ("detach", Test_detach.tests);
      ("fi", Test_fi.tests);
      ("semantics", Test_semantics.tests);
      ("benchmarks", Test_benchmarks.tests);
      ("campaign", Test_campaign.tests);
      ("shard", Test_shard.tests);
      ("robustness", Test_robustness.tests);
      ("hardening", Test_hardening.tests);
      ("extensions", Test_extensions.tests);
      ("faultmodels", Test_faultmodels.tests);
      ("paper", Test_paper_reproduction.tests);
      ("integration", Test_integration.tests);
      ("misc", Test_misc.tests);
    ]
