(* Forced mid-run kill + resume smoke test for the campaign engine.

   A 2-program x 2-tool matrix is interrupted partway through by a
   watchdog (the in-process stand-in for kill -9: remaining samples are
   abandoned, only the journal survives), resumed from that journal, and
   the resulting cells must be bit-identical — counts and modeled campaign
   cost — to an uninterrupted run with the same seed.

   Run via:  dune build @campaign-smoke *)

module E = Refine_campaign.Experiment
module J = Refine_campaign.Journal
module Rep = Refine_campaign.Report
module T = Refine_core.Tool
module Reg = Refine_bench_progs.Registry

let () =
  let programs = [ "DC"; "EP" ] in
  let tools = [ T.Refine; T.Pinfi ] in
  let samples = 20 and seed = 11 in
  let total = List.length programs * List.length tools * samples in
  let srcs = List.map (fun n -> (n, (Reg.find n).Reg.source)) programs in
  let path = Filename.temp_file "refine_smoke" ".journal" in

  (* phase 1: campaign killed mid-run by a watchdog *)
  let j = J.create path in
  let polls = ref 0 in
  let watchdog () = incr polls; !polls > 8 in
  ignore (E.run_matrix ~journal:j ~watchdog ~samples ~seed srcs tools);
  Printf.printf "[smoke] interrupted: %d/%d samples checkpointed to %s\n%!" (J.length j)
    total path;
  if J.length j >= total then begin
    print_endline "[smoke] FAIL: watchdog never fired, nothing was interrupted";
    exit 1
  end;

  (* phase 2: resume from the journal *)
  let j2 = J.create ~resume:true path in
  let resumed = E.run_matrix ~journal:j2 ~samples ~seed srcs tools in
  Printf.printf "[smoke] resumed: %d/%d samples checkpointed\n%!" (J.length j2) total;

  (* phase 3: uninterrupted reference run *)
  let fresh = E.run_matrix ~samples ~seed srcs tools in
  let ok =
    List.for_all2
      (fun (a : E.cell) (b : E.cell) ->
        a.E.counts = b.E.counts && a.E.injection_cost = b.E.injection_cost)
      resumed fresh
  in
  let healthy =
    List.for_all (fun (c : E.cell) -> E.total c.E.counts = samples) fresh
    && Rep.degradation fresh = []
  in
  Sys.remove path;
  if ok && healthy then
    print_endline "[smoke] PASS: resumed campaign bit-identical to uninterrupted run"
  else begin
    print_endline "[smoke] FAIL: resumed campaign differs from uninterrupted run";
    exit 1
  end
