(* Live-observability smoke test: the status endpoint of DESIGN.md §17
   serves a real sharded campaign while it runs.

   A 2-worker campaign (with one worker SIGKILLed mid-flight) runs with
   the status server on an ephemeral port; a client domain polls /status
   throughout.  Afterwards:

   1. every polled samples_done is monotone non-decreasing and the final
      /status reports finished with all samples done;
   2. the induced SIGKILL is visible in worker liveness (a restart count
      in the workers array, and usually an alive=false sighting);
   3. the final /metrics scrape byte-matches the file Metrics.save wrote
      (the scrape IS the --metrics-out artifact) and passes promlint.

   Run via:  dune build @live-smoke *)

module C = Refine_campaign.Coordinator
module E = Refine_campaign.Experiment
module Rep = Refine_campaign.Report
module Obs = Refine_obs
module M = Obs.Metrics
module Reg = Refine_bench_progs.Registry

(* the coordinator re-execs this very binary as its workers *)
let () = Refine_campaign.Worker.maybe_exec ()

let check name cond =
  if not cond then begin
    Printf.printf "[live-smoke] FAIL: %s\n%!" name;
    exit 1
  end

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

(* every integer following a "key": occurrence *)
let find_ints key body =
  let needle = Printf.sprintf "\"%s\":" key in
  let nn = String.length needle and nb = String.length body in
  let out = ref [] in
  let rec scan i =
    if i + nn > nb then List.rev !out
    else if String.sub body i nn = needle then begin
      let j = ref (i + nn) in
      let start = !j in
      if !j < nb && body.[!j] = '-' then incr j;
      while !j < nb && body.[!j] >= '0' && body.[!j] <= '9' do incr j done;
      if !j > start then out := int_of_string (String.sub body start (!j - start)) :: !out;
      scan !j
    end
    else scan (i + 1)
  in
  scan 0

let http_get port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let buf = Buffer.create 1024 and b = Bytes.create 4096 in
      let rec go () =
        match Unix.read fd b 0 4096 with
        | 0 -> Buffer.contents buf
        | n ->
          Buffer.add_subbytes buf b 0 n;
          go ()
      in
      go ())

let body_of response =
  let sep = "\r\n\r\n" in
  let n = String.length response in
  let rec find i =
    if i + 4 > n then response else if String.sub response i 4 = sep then String.sub response (i + 4) (n - i - 4) else find (i + 1)
  in
  find 0

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let () =
  let programs = [ "DC"; "EP" ] in
  let samples = 12 and seed = 9 in
  let srcs = List.map (fun n -> (n, (Reg.find n).Reg.source)) programs in
  let total = List.length programs * List.length Rep.tools * samples in
  Obs.Control.enable ();
  let srv = Obs.Serve.create () in
  let port = Obs.Serve.port srv in
  Printf.printf "[live-smoke] status server on port %d\n%!" port;
  let prom = Filename.temp_file "refine_live" ".prom" in
  (* 0 = campaign running, 1 = campaign done + metrics saved, 2 = client done *)
  let phase = Atomic.make 0 in

  let client =
    Domain.spawn (fun () ->
        let polls = ref [] in
        let saw_dead = ref false in
        let rec watch () =
          let st = body_of (http_get port "/status") in
          (match find_ints "samples_done" st with v :: _ -> polls := v :: !polls | [] -> ());
          if contains st "\"alive\":false" then saw_dead := true;
          if Atomic.get phase >= 1 && contains st "\"finished\":true" then st
          else begin
            Unix.sleepf 0.005;
            watch ()
          end
        in
        let final_status = watch () in
        let metrics = body_of (http_get port "/metrics") in
        Atomic.set phase 2;
        (List.rev !polls, !saw_dead, final_status, metrics))
  in

  (* kill worker 0 a quarter of the way in: the respawn must be visible
     over /status as a nonzero restart count *)
  let options =
    {
      C.default_options with
      C.workers = 2;
      status = Some srv;
      chaos = { C.no_chaos with C.kill_worker = Some (0, total / 4) };
    }
  in
  let cells = C.run_matrix ~options ~samples ~seed srcs Rep.tools in
  M.save prom;
  Atomic.set phase 1;
  (* keep serving until the client has scraped the final state *)
  while Atomic.get phase < 2 do
    Obs.Serve.poll srv;
    Unix.sleepf 0.002
  done;
  Obs.Serve.poll srv;
  let polls, saw_dead, final_status, metrics = Domain.join client in
  Obs.Serve.close srv;

  check "campaign fully resolved"
    (List.for_all (fun (c : E.cell) -> E.total c.E.counts = samples) cells);
  check "status was polled during the run" (List.length polls >= 2);
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  check "samples_done monotone non-decreasing" (monotone polls);
  Printf.printf "[live-smoke] %d /status polls, progress %s\n%!" (List.length polls)
    (match (polls, List.rev polls) with
    | f :: _, l :: _ -> Printf.sprintf "%d -> %d" f l
    | _ -> "-");

  check "final status reports finished" (contains final_status "\"finished\":true");
  (match find_ints "samples_done" final_status with
  | v :: _ -> check "final samples_done = total" (v = total)
  | [] -> check "final samples_done present" false);
  check "final eta is 0" (contains final_status "\"eta_s\":0.000");
  let restarts = List.fold_left ( + ) 0 (find_ints "restarts" final_status) in
  check "induced SIGKILL visible as a worker restart" (restarts >= 1);
  check "both worker slots reported" (List.length (find_ints "slot" final_status) = 2);
  Printf.printf "[live-smoke] worker restarts over /status: %d%s\n%!" restarts
    (if saw_dead then " (dead worker observed live)" else "");

  check "/metrics scrape byte-matches the saved dump" (metrics = read_file prom);
  (match Promlint.lint metrics with
  | [] -> ()
  | errs ->
    Printf.printf "[live-smoke] FAIL: promlint: %s\n%!" (String.concat "; " errs);
    exit 1);
  check "scrape carries campaign counters" (contains metrics "refine_campaign_samples_total");
  Sys.remove prom;
  Printf.printf
    "[live-smoke] PASS: live /status + /metrics over a crash-recovering campaign (%d samples)\n%!"
    total
