(* Sharded campaign tests: wire-codec strictness (every frame round-trips,
   no truncated buffer decodes, the deframer never mis-reads a torn tail)
   and the headline determinism property — a campaign sharded over worker
   processes is bit-identical to in-process domains and to a sequential
   run with the same seed. *)

module S = Refine_campaign.Shard
module C = Refine_campaign.Coordinator
module E = Refine_campaign.Experiment
module Rep = Refine_campaign.Report
module J = Refine_campaign.Journal
module W = Refine_support.Wire
module F = Refine_core.Fault
module T = Refine_core.Tool
module M = Refine_obs.Metrics
module Sp = Refine_obs.Span

(* ---- frame generators -------------------------------------------------- *)

let gen_str = QCheck.Gen.(string_size (int_bound 40)) (* full byte range *)
let gen_i64 = QCheck.Gen.map Int64.of_int QCheck.Gen.int

(* dyadic rationals: finite, and exactly representable so structural
   equality after an IEEE-754 round-trip is honest *)
let gen_f = QCheck.Gen.map (fun i -> float_of_int i *. 0.0625) QCheck.Gen.(int_range (-1_000_000) 1_000_000)
let gen_outcome = QCheck.Gen.oneofl [ F.Crash; F.Soc; F.Benign; F.Tool_error ]

let gen_model_str =
  QCheck.Gen.oneofl [ "reg"; "mem"; "instr"; "multi:3"; "burst:4" ]

let gen_entry =
  QCheck.Gen.(
    map
      (fun ((program, tool, sample, outcome, cost, attempts), model) ->
        { J.program; tool; model; sample; outcome; cost; attempts })
      (pair (tup6 gen_str gen_str small_nat gen_outcome gen_i64 small_nat) gen_model_str))

let gen_config =
  QCheck.Gen.(
    map
      (fun ((seed, retries, cost_cap, output_quota, wall_clock, livelock),
            (verify_mir, verify_each, cache, pipeline, heartbeat_s),
            (obs, trace)) ->
        {
          S.seed;
          retries;
          cost_cap;
          output_quota;
          wall_clock;
          livelock;
          verify_mir;
          verify_each;
          cache;
          pipeline;
          heartbeat_s;
          obs;
          trace;
        })
      (tup3
         (tup6 int small_nat (opt gen_i64) (opt small_nat) (opt gen_f) (opt small_nat))
         (tup5 bool bool bool (opt gen_str) gen_f)
         (pair bool bool)))

(* ---- observability-plane payloads -------------------------------------- *)

let gen_labels = QCheck.Gen.(small_list (pair gen_str gen_str))

let gen_value =
  QCheck.Gen.(
    oneof
      [
        map (fun v -> M.Counter v) gen_i64;
        map (fun v -> M.Gauge v) gen_f;
        map
          (fun (raw, cs, sum, count) ->
            let bounds = Array.of_list (List.sort_uniq compare raw) in
            let ncs = List.length cs in
            let counts =
              Array.init (Array.length bounds + 1) (fun i ->
                  Int64.of_int (List.nth cs (i mod ncs)))
            in
            M.Histogram { M.bounds; counts; sum; count })
          (tup4
             (list_size (int_range 1 5) gen_f)
             (list_size (int_range 1 6) small_nat)
             gen_f
             (map Int64.of_int small_nat));
      ])

let gen_item =
  QCheck.Gen.(
    map
      (fun (x_name, x_labels, x_help, x_value) -> { M.x_name; x_labels; x_help; x_value })
      (tup4 gen_str gen_labels gen_str gen_value))

let gen_event =
  QCheck.Gen.(
    map
      (fun ((name, attrs, t_start, dur_s, depth), (domain, cost, ok, trace, span_id, parent)) ->
        { Sp.name; attrs; t_start; dur_s; depth; domain; cost; ok; trace; span_id; parent })
      (pair
         (tup5 gen_str gen_labels gen_f gen_f small_nat)
         (tup6 small_nat gen_i64 bool gen_str small_nat small_nat)))

let gen_summary =
  QCheck.Gen.(
    map
      (fun ((chunk, program, tool, quarantined, golden_exit, dyn_count),
            (profile_cost, golden_output_len, static_instrumented, instrument_s),
            (compile_s, execute_s, harness_s, failures)) ->
        {
          S.chunk;
          program;
          tool;
          quarantined;
          golden_exit;
          dyn_count;
          profile_cost;
          golden_output_len;
          static_instrumented;
          instrument_s;
          compile_s;
          execute_s;
          harness_s;
          failures;
        })
      (tup3
         (tup6 small_nat gen_str gen_str bool small_nat gen_i64)
         (tup4 gen_i64 small_nat small_nat gen_f)
         (tup4 gen_f gen_f gen_f (small_list (tup3 small_nat small_nat gen_str)))))

let gen_frame =
  QCheck.Gen.(
    oneof
      [
        map (fun (pid, version) -> S.Hello { pid; version }) (pair small_nat small_nat);
        map (fun c -> S.Init c) gen_config;
        map
          (fun ((chunk, program, source, tool, model), (samples, todo, trace, parent_span)) ->
            S.Assign { chunk; program; source; tool; model; samples; todo; trace; parent_span })
          (pair
             (tup5 small_nat gen_str gen_str gen_str gen_model_str)
             (tup4 small_nat (small_list small_nat) gen_str small_nat));
        map (fun (chunk, entry) -> S.Outcome { chunk; entry }) (pair small_nat gen_entry);
        map
          (fun (program, tool, reason) -> S.Quarantine { program; tool; reason })
          (tup3 gen_str gen_str gen_str);
        map (fun s -> S.Chunk_done s) gen_summary;
        map
          (fun (chunk, message) -> S.Chunk_failed { chunk; message })
          (pair small_nat gen_str);
        map (fun completed -> S.Heartbeat { completed }) small_nat;
        return S.Shutdown;
        map (fun items -> S.Metrics_delta items) (small_list gen_item);
        map (fun events -> S.Trace_batch events) (small_list gen_event);
      ])

let arb_frame = QCheck.make ~print:S.frame_name gen_frame

(* ---- codec properties -------------------------------------------------- *)

let prop_roundtrip =
  QCheck.Test.make ~name:"every frame round-trips bit-exactly" ~count:300 arb_frame (fun f ->
      S.decode (S.encode f) = f)

let prop_no_prefix_decodes =
  QCheck.Test.make ~name:"no strict prefix of a frame decodes" ~count:300
    QCheck.(pair arb_frame small_nat)
    (fun (f, cut) ->
      let p = S.encode f in
      let cut = cut mod String.length p in
      match S.decode (String.sub p 0 cut) with
      | _ -> false
      | exception (W.Truncated | Invalid_argument _) -> true)

let prop_stream_reassembles =
  QCheck.Test.make ~name:"deframer reassembles frames across arbitrary chunking" ~count:100
    QCheck.(pair (small_list arb_frame) small_nat)
    (fun (frames, step) ->
      let bytes = String.concat "" (List.map (fun f -> W.frame (S.encode f)) frames) in
      let step = 1 + (step mod 7) in
      let st = W.stream () in
      let n = String.length bytes in
      let i = ref 0 in
      while !i < n do
        let len = min step (n - !i) in
        W.feed st (Bytes.of_string (String.sub bytes !i len)) len;
        i := !i + len
      done;
      let rec pop acc =
        match W.next st with None -> List.rev acc | Some p -> pop (S.decode p :: acc)
      in
      pop [] = frames && W.residue st = 0)

let prop_torn_tail_is_residue =
  QCheck.Test.make ~name:"a torn trailing frame is residue, never a decode" ~count:200
    QCheck.(pair arb_frame small_nat)
    (fun (f, cut) ->
      let bytes = W.frame (S.encode f) in
      let keep = 1 + (cut mod (String.length bytes - 1)) in
      let st = W.stream () in
      W.feed st (Bytes.of_string (String.sub bytes 0 keep)) keep;
      W.next st = None && W.residue st = keep)

let test_tool_names () =
  List.iter
    (fun t -> Alcotest.(check bool) "tool name inverts" true (S.tool_of_name (T.kind_name t) = t))
    [ T.Refine; T.Llfi; T.Pinfi ];
  Alcotest.check_raises "unknown tool" (Invalid_argument "Shard.tool_of_name: BOGUS") (fun () ->
      ignore (S.tool_of_name "bogus"))

(* an unknown tag is a protocol-version skew, not a torn frame: it must
   surface as Protocol_mismatch naming the local version and the tag *)
let test_unknown_tag () =
  match S.decode "\xfe" with
  | _ -> Alcotest.fail "tag 254 decoded"
  | exception S.Protocol_mismatch { expected_version; tag } ->
    Alcotest.(check int) "reports local protocol version" S.version expected_version;
    Alcotest.(check int) "reports offending tag" 254 tag

(* ---- sharded = domains = sequential ------------------------------------ *)

let src =
  {|
int main() {
  int i; float s = 0.0;
  for (i = 0; i < 25; i = i + 1) { s = s + tofloat(i * i) * 0.125; }
  print_float(s);
  return 0;
}
|}

let key (c : E.cell) =
  (c.E.program, T.kind_name c.E.tool, c.E.counts, c.E.injection_cost, c.E.quarantined)

let test_workers_match_domains () =
  let samples = 8 and seed = 11 in
  let programs = [ ("tiny", src) ] in
  let sequential = E.run_matrix ~domains:1 ~samples ~seed programs Rep.tools in
  let domains = E.run_matrix ~domains:4 ~samples ~seed programs Rep.tools in
  let options = { C.default_options with C.workers = 4 } in
  let sharded = C.run_matrix ~options ~samples ~seed programs Rep.tools in
  Alcotest.(check bool) "domains = sequential" true
    (List.map key domains = List.map key sequential);
  Alcotest.(check bool) "workers = sequential" true
    (List.map key sharded = List.map key sequential);
  let t5 cells = Rep.table5 (Rep.chi2_rows cells [ "tiny" ]) in
  Alcotest.(check string) "table5 identical" (t5 sequential) (t5 sharded)

(* The fault-model plane (DESIGN.md §18): the sharded-equals-in-process
   guarantee must hold for every fault model, not just the paper's
   register-bit default — the Assign frame carries the model, the workers
   thread it into run_cell, and the coordinator filters its journal prefill
   by it.  One model also takes a SIGKILL mid-campaign: kill-and-reassign
   must stay bit-identical under non-default models too. *)
let test_models_match_domains () =
  let samples = 6 and seed = 17 in
  let programs = [ ("tiny", src) ] in
  List.iter
    (fun (name, chaos) ->
      let model = F.model_of_string name in
      let sequential = E.run_matrix ~domains:1 ~model ~samples ~seed programs Rep.tools in
      let domains = E.run_matrix ~domains:4 ~model ~samples ~seed programs Rep.tools in
      let options = { C.default_options with C.workers = 2; chaos } in
      let sharded = C.run_matrix ~options ~model ~samples ~seed programs Rep.tools in
      Alcotest.(check bool)
        (name ^ ": domains = sequential")
        true
        (List.map key domains = List.map key sequential);
      Alcotest.(check bool)
        (name ^ ": workers = sequential")
        true
        (List.map key sharded = List.map key sequential))
    [
      ("mem", C.no_chaos);
      ("instr", { C.no_chaos with C.kill_worker = Some (0, 4) });
      ("burst:2", C.no_chaos);
    ]

(* The observability-plane headline (DESIGN.md §17): with cell-granular
   chunks, the coordinator's merged fleet counters are the same multiset
   of (name, labels, value) as an in-process domains run — not
   approximately, exactly.  [~cache:false] on both runs so neither can
   skip golden-run profiling via a prepared-tier hit from earlier
   tests. *)
let det_counters =
  [
    "refine_campaign_samples_total";
    "refine_campaign_cells_total";
    "refine_exec_steps_total";
    "refine_fi_site_hits_total";
    "refine_run_cost_units_total";
  ]

let test_fleet_counters_match_domains () =
  let samples = 6 and seed = 13 in
  let programs = [ ("tiny", src) ] in
  Refine_obs.Control.enable ();
  let show (name, labels, v) =
    let ls = String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels) in
    let vs =
      match v with
      | M.Counter c -> Int64.to_string c
      | M.Gauge g -> string_of_float g
      | M.Histogram h -> Printf.sprintf "hist:%Ld" h.M.count
    in
    Printf.sprintf "%s{%s} %s" name ls vs
  in
  let capture () =
    List.filter_map
      (fun ((name, _, _) as m) -> if List.mem name det_counters then Some (show m) else None)
      (M.snapshot ())
  in
  M.reset ();
  let _ = E.run_matrix ~domains:2 ~cache:false ~samples ~seed programs Rep.tools in
  let reference = capture () in
  M.reset ();
  let options = { C.default_options with C.workers = 2; chunk_samples = Some samples } in
  let _ = C.run_matrix ~options ~cache:false ~samples ~seed programs Rep.tools in
  let fleet = capture () in
  M.reset ();
  Refine_obs.Control.disable ();
  Alcotest.(check (list string)) "fleet-merged counters = domains run" reference fleet

let qcheck = QCheck_alcotest.to_alcotest

let tests =
  [
    qcheck prop_roundtrip;
    qcheck prop_no_prefix_decodes;
    qcheck prop_stream_reassembles;
    qcheck prop_torn_tail_is_residue;
    Alcotest.test_case "tool name mapping" `Quick test_tool_names;
    Alcotest.test_case "unknown tag rejected" `Quick test_unknown_tag;
    Alcotest.test_case "workers = domains = sequential" `Quick test_workers_match_domains;
    Alcotest.test_case "per-model workers = domains = sequential (with kill)" `Quick
      test_models_match_domains;
    Alcotest.test_case "fleet counters = domains counters" `Quick test_fleet_counters_match_domains;
  ]
