(* Differential tests for post-injection detach (DESIGN.md §20).

   Once a REFINE or LLFI sample's single injection has retired, the run
   hands off to a prepared detach target — the golden twin via the
   correspondence map, or a branch-patched copy of the instrumented image
   — and simulates the rest at golden speed.  The refactor must be
   invisible in results: fixed-seed outcome tables (counts AND summed
   modeled cost) are bit-identical with detach on or off, across all five
   fault models, both engines, forced-fallback mode, and parallel
   domains.  Every handoff decline must leave the run attached with
   identical semantics, and a mutated detach image must never be served
   from the artifact cache. *)

module M = Refine_mir.Minstr
module R = Refine_mir.Reg
module Ir = Refine_ir.Ir
module X = Refine_machine.Exec
module L = Refine_backend.Layout
module P = Refine_support.Prng
module F = Refine_core.Fault
module T = Refine_core.Tool
module Fm = Refine_backend.Fimap
module Ex = Refine_campaign.Experiment

let all_models =
  [
    F.Reg_bit;
    F.Mem_cell;
    F.Instr_image;
    F.Multi_bit { bits = 3; burst = false };
    F.Multi_bit { bits = 4; burst = true };
  ]

(* restore every kill switch this suite toggles *)
let protected f =
  Fun.protect
    ~finally:(fun () ->
      T.use_detach := true;
      T.use_decode := true;
      T.force_detach_fallback := false)
    f

(* the observable slice of a result that must not depend on detach (the
   engine-level targets below retire 1:1 with the source, so steps are
   comparable too) *)
let sig_of (r : X.result) =
  Printf.sprintf "%s out=%S cost=%Ld steps=%Ld"
    (match r.X.status with
    | X.Running -> "running"
    | X.Exited c -> Printf.sprintf "exit %d" c
    | X.Trapped tr -> "trap " ^ X.string_of_trap tr
    | X.Timed_out -> "timeout")
    r.X.output r.X.cost r.X.steps

(* --- engine-level handoff mechanics ------------------------------------ *)

(* identity correspondence: every pc is its own golden rank *)
let identity_map n =
  {
    X.h_rank = Array.init n (fun i -> i);
    h_next = Array.init (n + 1) (fun i -> if i < n then i else -1);
  }

(* A counted loop that asks for detach mid-run through an extern: the
   request is honored at the next 1024-step poll slot, well inside the
   loop, so the handoff happens with live architectural state. *)
let loop_image n_iter =
  Test_fastpath.image_of
    [
      M.Mmov (R.gpr 1, M.Imm 0L);
      M.Mbin (Ir.Add, R.gpr 1, R.gpr 1, M.Imm 1L);
      M.Mcallext "fire";
      M.Mcmp (R.gpr 1, M.Imm (Int64.of_int n_iter));
      M.Mjcc (M.CNe, 1);
      M.Mhalt;
    ]

let fire_at k = ("fire", 2, fun (t : X.t) -> if t.X.regs.(R.gpr 1) = Int64.of_int k then t.X.detach_req <- true)
let fire_noop = ("fire", 2, fun (_ : X.t) -> ())

let baseline image exts = X.run (X.create_from_snapshot ~ext_extra:exts (X.snapshot image))

let test_handoff_map_identity () =
  let image = loop_image 2000 in
  let snap = X.snapshot image in
  let r0 = baseline image [ fire_at 600 ] in
  let eng = X.create_from_snapshot ~ext_extra:[ fire_at 600 ] snap in
  let plan =
    {
      X.plan_target = (fun () -> X.create_from_snapshot ~ext_extra:[ fire_noop ] snap);
      plan_map = Some (identity_map (Array.length image.L.code));
    }
  in
  let r = X.run ~detach:plan eng in
  Alcotest.(check bool) "handoff happened" true r.X.detached;
  Alcotest.(check int) "identity map needs no drain" 0 r.X.drain_steps;
  Alcotest.(check string) "detached run invisible" (sig_of r0) (sig_of r)

let test_handoff_patch_shared_coords () =
  let image = loop_image 2000 in
  let snap = X.snapshot image in
  let r0 = baseline image [ fire_at 600 ] in
  let eng = X.create_from_snapshot ~ext_extra:[ fire_at 600 ] snap in
  let plan =
    {
      X.plan_target = (fun () -> X.create_from_snapshot ~ext_extra:[ fire_noop ] snap);
      plan_map = None;
    }
  in
  let r = X.run ~detach:plan eng in
  Alcotest.(check bool) "patch-mode handoff happened" true r.X.detached;
  Alcotest.(check string) "patch-mode run invisible" (sig_of r0) (sig_of r)

let test_drain_exhaustion_declines () =
  let image = loop_image 2000 in
  let snap = X.snapshot image in
  let r0 = baseline image [ fire_at 600 ] in
  let eng = X.create_from_snapshot ~ext_extra:[ fire_at 600 ] snap in
  let n = Array.length image.L.code in
  (* no pc ever has a golden rank: the drain must hit its cap (or the
     program's end) and decline, leaving the run attached *)
  let no_rank = { X.h_rank = Array.make n (-1); h_next = Array.make (n + 1) (-1) } in
  let plan =
    {
      X.plan_target = (fun () -> X.create_from_snapshot ~ext_extra:[ fire_noop ] snap);
      plan_map = Some no_rank;
    }
  in
  let r = X.run ~detach:plan eng in
  Alcotest.(check bool) "declined" false r.X.detached;
  Alcotest.(check string) "declined run attached-identical" (sig_of r0) (sig_of r)

let test_smashed_return_address_declines () =
  (* main calls f; f smashes its own return-address slot and then asks
     for detach from inside a loop.  The shadow-call-stack validation
     must decline the handoff (recorded RA no longer in memory), and the
     attached continuation traps at [Mret] exactly like the baseline. *)
  let smash =
    ( "smash",
      1,
      fun (t : X.t) ->
        Bytes.set_int64_le t.X.mem (Int64.to_int t.X.regs.(R.rsp)) 0x7afe7afeL;
        t.X.detach_req <- true )
  in
  let code =
    [
      M.Mcalli 2;
      M.Mhalt;
      M.Mmov (R.gpr 2, M.Imm 0L);
      M.Mcallext "smash";
      M.Mbin (Ir.Add, R.gpr 2, R.gpr 2, M.Imm 1L);
      M.Mcmp (R.gpr 2, M.Imm 3000L);
      M.Mjcc (M.CNe, 4);
      M.Mret;
    ]
  in
  let image = Test_fastpath.image_of code in
  let snap = X.snapshot image in
  let r0 = baseline image [ smash ] in
  (match r0.X.status with
  | X.Trapped (X.Bad_pc _) -> ()
  | _ -> Alcotest.failf "baseline should trap on the smashed RA, got %a" Test_fastpath.pp_result r0);
  let eng = X.create_from_snapshot ~ext_extra:[ smash ] snap in
  let plan =
    {
      X.plan_target = (fun () -> X.create_from_snapshot ~ext_extra:[ smash ] snap);
      plan_map = Some (identity_map (Array.length image.L.code));
    }
  in
  let r = X.run ~detach:plan eng in
  Alcotest.(check bool) "smashed RA declines handoff" false r.X.detached;
  Alcotest.(check string) "attached-identical after decline" (sig_of r0) (sig_of r)

(* --- the per-sample eligibility matrix --------------------------------- *)

let test_plan_matrix () =
  protected (fun () ->
      let q = T.default_quotas in
      let pr = T.prepare T.Refine Test_fastpath.src_int in
      let pl = T.prepare T.Llfi Test_fastpath.src_int in
      let pp = T.prepare T.Pinfi Test_fastpath.src_int in
      let armed p model quotas = Option.is_some (T.detach_plan_for ~quotas p model) in
      Alcotest.(check bool) "REFINE call-free program maps" true
        (match pr.T.detach with Some dt -> dt.T.dt_map <> None | None -> false);
      Alcotest.(check bool) "PINFI never has a target" true (pp.T.detach = None);
      Alcotest.(check bool) "REFINE + Reg_bit armed" true (armed pr F.Reg_bit q);
      Alcotest.(check bool) "LLFI + Instr_image armed" true (armed pl F.Instr_image q);
      Alcotest.(check bool) "REFINE + Instr_image declined" false (armed pr F.Instr_image q);
      let live = { q with T.livelock_window = Some 4096 } in
      Alcotest.(check bool) "livelock declines REFINE" false (armed pr F.Reg_bit live);
      Alcotest.(check bool) "livelock keeps step-exact LLFI" true (armed pl F.Reg_bit live);
      T.use_detach := false;
      Alcotest.(check bool) "kill switch declines" false (armed pr F.Reg_bit q);
      T.use_detach := true;
      T.use_decode := false;
      Alcotest.(check bool) "targets need the decoded engine" false (armed pr F.Reg_bit q))

(* --- mutated detach images must never be served from the cache ---------- *)

let test_mutated_detach_never_served () =
  protected (fun () ->
      T.reset_artifact_caches ();
      let p1 = T.prepare T.Refine Test_fastpath.src_int in
      let dt1 = Option.get p1.T.detach in
      let pristine = dt1.T.dt_image.L.code.(0) in
      Alcotest.(check bool) "map mode" true (dt1.T.dt_map <> None);
      (* corrupt the cached golden twin in place: both the prepared tier
         (whose fingerprint covers the detach code) and the detach-golden
         tier (whose fingerprint is the golden code digest) must notice
         and rebuild instead of serving the mutation *)
      dt1.T.dt_image.L.code.(0) <- M.Mhalt;
      let p2 = T.prepare T.Refine Test_fastpath.src_int in
      let dt2 = Option.get p2.T.detach in
      Alcotest.(check bool) "rebuilt, not served mutated" true
        (dt2.T.dt_image.L.code.(0) = pristine && not (dt2.T.dt_image == dt1.T.dt_image)))

(* --- per-sample differential: detach on/off, random programs ------------ *)

(* Fixed-PRNG injection batches over a generated program; the model
   rotates with the seed.  One leg runs under the paper-default sandbox,
   one with the livelock detector armed (declining REFINE's plan), so
   both the handoff and the decline paths must be invisible. *)
let samples_sig p ~model ~quotas n =
  List.init n (fun i ->
      let e = T.run_injection ~quotas ~model p (P.create (4000 + (7 * i))) in
      (e.F.outcome, e.F.run_cost, e.F.fault <> None))

let prop_detach_invisible =
  QCheck.Test.make ~name:"detach on/off: per-sample outcomes identical (random programs)"
    ~count:5
    QCheck.(int_range 1 5000)
    (fun seed ->
      protected (fun () ->
          let src = Test_semantics.gen_program seed in
          let model = List.nth all_models (seed mod List.length all_models) in
          let live = { T.default_quotas with T.livelock_window = Some 8192 } in
          List.for_all
            (fun kind ->
              let p = T.prepare kind src in
              List.for_all
                (fun quotas ->
                  T.use_detach := false;
                  let off = samples_sig p ~model ~quotas 6 in
                  T.use_detach := true;
                  let on = samples_sig p ~model ~quotas 6 in
                  if off <> on then
                    QCheck.Test.fail_reportf "detach divergence (seed %d, %s, %s)" seed
                      (T.kind_name kind) (F.string_of_model model);
                  true)
                [ T.default_quotas; live ])
            [ T.Refine; T.Llfi ]))

(* --- fixed-seed campaign equality: all five models, both targets -------- *)

let campaign_summary model =
  T.reset_artifact_caches ();
  Test_fastpath.matrix_summary
    (Ex.run_matrix ~model ~domains:2 ~samples:20 ~seed:13
       [ ("ints", Test_fastpath.src_int); ("floats", Test_fastpath.src_float) ]
       [ T.Refine; T.Llfi ])

let test_campaign_equality_all_models () =
  protected (fun () ->
      List.iter
        (fun model ->
          T.use_detach := false;
          let attached = campaign_summary model in
          T.use_detach := true;
          let detached = campaign_summary model in
          Alcotest.(check string)
            (F.string_of_model model ^ ": outcome table detach = no-detach") attached detached;
          (* the overlay fallback (branch-patched target, shared
             coordinates) must be equally invisible *)
          T.force_detach_fallback := true;
          let fallback = campaign_summary model in
          T.force_detach_fallback := false;
          Alcotest.(check string)
            (F.string_of_model model ^ ": outcome table fallback = no-detach") attached fallback)
        all_models)

let qcheck = QCheck_alcotest.to_alcotest

let tests =
  [
    Alcotest.test_case "map-mode handoff: identity map, zero drain" `Quick
      test_handoff_map_identity;
    Alcotest.test_case "patch-mode handoff: shared coordinates" `Quick
      test_handoff_patch_shared_coords;
    Alcotest.test_case "drain exhaustion declines, run stays attached" `Quick
      test_drain_exhaustion_declines;
    Alcotest.test_case "smashed return address declines the handoff" `Quick
      test_smashed_return_address_declines;
    Alcotest.test_case "per-sample eligibility matrix" `Quick test_plan_matrix;
    Alcotest.test_case "mutated detach image is never served" `Quick
      test_mutated_detach_never_served;
    qcheck prop_detach_invisible;
    Alcotest.test_case "fixed-seed campaigns: detach = no-detach for all 5 models" `Slow
      test_campaign_equality_all_models;
  ]
