(* Small-surface unit tests: memory layout, extern formatting, assembly
   printing and the inliner's size heuristics. *)

module ML = Refine_ir.Memlayout
module Ext = Refine_ir.Externs
module M = Refine_mir.Minstr
module R = Refine_mir.Reg
module MP = Refine_mir.Mprinter

let test_memlayout_constants () =
  Alcotest.(check bool) "null guard below globals" true (ML.null_guard <= ML.globals_base);
  Alcotest.(check bool) "stack fits" true (ML.stack_limit < ML.mem_size);
  Alcotest.(check int) "align8 rounds up" 16 (ML.align8 9);
  Alcotest.(check int) "align8 keeps aligned" 16 (ML.align8 16);
  Alcotest.(check int) "align8 zero" 0 (ML.align8 0)

let test_memlayout_placement () =
  let globals =
    [
      { Refine_ir.Ir.gname = "a"; gsize = 8; gbytes = None };
      { Refine_ir.Ir.gname = "b"; gsize = 20; gbytes = None }; (* padded to 24 *)
      { Refine_ir.Ir.gname = "c"; gsize = 8; gbytes = None };
    ]
  in
  let addr, heap_base = ML.place_globals globals in
  Alcotest.(check int) "first at base" ML.globals_base (addr "a");
  Alcotest.(check int) "second follows" (ML.globals_base + 8) (addr "b");
  Alcotest.(check int) "third after padding" (ML.globals_base + 8 + 24) (addr "c");
  Alcotest.(check int) "heap after all" (ML.globals_base + 8 + 24 + 8) heap_base;
  Alcotest.(check bool) "unknown rejected" true
    (try ignore (addr "nope"); false with Invalid_argument _ -> true)

let test_extern_signatures () =
  Alcotest.(check bool) "print_int known" true (Ext.is_extern "print_int");
  Alcotest.(check bool) "llfi callbacks declared" true (Ext.is_extern "llfi_inject_i1");
  Alcotest.(check bool) "unknown unknown" false (Ext.is_extern "bogus_fn");
  match Ext.signature "pow" with
  | Some ([ Refine_ir.Ir.F64; Refine_ir.Ir.F64 ], Some Refine_ir.Ir.F64) -> ()
  | _ -> Alcotest.fail "pow signature"

let test_extern_float_formats () =
  Alcotest.(check string) "six digits" "3.14159" (Ext.format_float6 3.14159265);
  Alcotest.(check string) "full roundtrip" "0.10000000000000001" (Ext.format_float_full 0.1);
  Alcotest.(check (float 0.0)) "full format roundtrips" 0.1
    (float_of_string (Ext.format_float_full 0.1))

let test_mprinter () =
  let check i expected = Alcotest.(check string) expected expected (MP.to_string i) in
  check (M.Mmov (R.gpr 1, M.Imm 5L)) "mov r1, 5";
  check (M.Mload (R.gpr 2, R.rbp, -16)) "mov r2, qword ptr [rbp - 16]";
  check (M.Mbin (Refine_ir.Ir.Add, R.gpr 0, R.gpr 1, M.Reg (R.gpr 2))) "add r0, r1, r2";
  check (M.Mpush R.rbp) "push rbp";
  check (M.Mjcc (M.CFge, 7)) "jfge L7";
  check (M.Mcallext "sin") "call ext:sin";
  check (M.Mxorbit (R.fpr 3, R.gpr 0)) "btc f3, r0"

let test_inline_size_gate () =
  (* a function above the size threshold is not inlined *)
  let big_body =
    String.concat "\n"
      (List.init 80 (fun i -> Printf.sprintf "  acc = acc + %d;" i))
  in
  let src =
    Printf.sprintf
      {|
int big(int x) {
  int acc = x;
%s
  return acc;
}
int main() { print_int(big(1)); return 0; }
|}
      big_body
  in
  let m = Refine_minic.Frontend.compile src in
  Refine_passes.Pipeline.optimize ~verify:true Refine_passes.Pipeline.O2 m;
  (* constant folding may shrink it; check against the inliner directly *)
  let m2 = Refine_minic.Frontend.compile src in
  List.iter Refine_ir.Mem2reg.run m2.Refine_ir.Ir.funcs;
  let inlined = Refine_ir.Inline.run ~threshold:10 m2 in
  Alcotest.(check int) "nothing inlined under a tiny threshold" 0 inlined;
  ignore m

let test_inline_once_called_small () =
  let m =
    Refine_minic.Frontend.compile
      "int tiny(int x) { return x + 1; } int main() { print_int(tiny(41)); return 0; }"
  in
  List.iter Refine_ir.Mem2reg.run m.Refine_ir.Ir.funcs;
  let n = Refine_ir.Inline.run m in
  Alcotest.(check int) "one site inlined" 1 n;
  Refine_ir.Verify.check_module m;
  let r = Refine_ir.Interp.run m in
  Alcotest.(check string) "42" "42\n" r.Refine_ir.Interp.output

let tests =
  [
    Alcotest.test_case "memlayout constants" `Quick test_memlayout_constants;
    Alcotest.test_case "memlayout placement" `Quick test_memlayout_placement;
    Alcotest.test_case "extern signatures" `Quick test_extern_signatures;
    Alcotest.test_case "extern float formats" `Quick test_extern_float_formats;
    Alcotest.test_case "assembly printing" `Quick test_mprinter;
    Alcotest.test_case "inline size gate" `Quick test_inline_size_gate;
    Alcotest.test_case "inline small callee" `Quick test_inline_once_called_small;
  ]
